"""Serving-runtime throughput/latency benchmark: 1/2/4 workers vs inline.

The PR 3 soak (``test_synth_corpus_soak.py``) measures the single-threaded
``Session.predict_batch`` ceiling; this benchmark measures what the
``repro.serve`` worker pool adds on the same corpus workload:

* **baseline** — the inline facade serving warm corpus waves from one
  thread (the PR 3 soak shape),
* **pooled** — 4 client threads hammering a shared :class:`repro.serve.Server`
  with the same waves at 1, 2 and 4 workers; per-call latencies give the
  p50/p95/p99 tails,
* **coalescing** — a wave of single ``submit`` calls, recording how many
  micro-batches the window/size policy formed.

Machine-readable output goes to ``benchmarks/BENCH_pr4_serve.json``
(including the PR 3 warm-soak number when its JSON is present, for
cross-PR comparison).  ``REPRO_BENCH_QUICK=1`` shrinks the workload for
CI smoke jobs.

Worker threads parallelise the BLAS-dominated GNN forwards (NumPy releases
the GIL inside them), so the scaling gate is hardware-aware: on a
multi-core machine the pool must beat one worker; on a single-core box
(where thread scaling is physically impossible) the gate degrades to
"no pathological collapse" and the JSON records ``cpu_count`` so readers
can interpret the numbers.
"""

import json
import os
import time
import threading

import numpy as np

from _reporting import report, report_json
from repro.api import DataConfig, ModelConfig, ReproConfig, Session, get_kernel
from repro.ml.trainer import TrainingConfig
from repro.pipeline import SweepConfig
from repro.serve import Server, ServerConfig
from repro.synth import build_corpus

PLATFORM = "v100"
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

CORPUS_SIZE = 8 if QUICK else 24
CLIENT_THREADS = 4
PASSES_PER_CLIENT = 2 if QUICK else 4
WORKER_COUNTS = (1, 2, 4)


def make_trained_session() -> Session:
    config = ReproConfig(
        data=DataConfig(
            sweep=SweepConfig(size_scales=(1.0,), team_counts=(64,),
                              thread_counts=(8, 64),
                              kernels=[get_kernel("matmul"), get_kernel("matvec")]),
            platforms=(PLATFORM,),
        ),
        # serving-weight model: wide enough that the forward is BLAS-bound
        # (the parallelisable fraction), as a real serving model would be
        model=ModelConfig(hidden_dim=32),
        training=TrainingConfig(epochs=3, batch_size=16,
                                learning_rate=2e-3, seed=0),
        seed=0,
    )
    session = Session(config)
    session.train()
    return session


def percentile_ms(latencies, q) -> float:
    return float(np.percentile(np.asarray(latencies) * 1000.0, q))


def run_clients(server: Server, requests, expected) -> dict:
    """4 client threads × PASSES_PER_CLIENT warm waves; returns rate + tails."""
    latencies = []
    lock = threading.Lock()
    errors = []

    def client() -> None:
        try:
            for _ in range(PASSES_PER_CLIENT):
                start = time.perf_counter()
                got = server.predict_batch(requests, PLATFORM, dtype=None)
                elapsed = time.perf_counter() - start
                np.testing.assert_array_equal(got, expected)
                with lock:
                    latencies.append(elapsed)
        except Exception as error:  # noqa: BLE001 - surfaced by the assert below
            errors.append(error)

    threads = [threading.Thread(target=client) for _ in range(CLIENT_THREADS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - start
    assert not errors, errors[0]

    total_requests = CLIENT_THREADS * PASSES_PER_CLIENT * len(requests)
    return {
        "requests_per_s": total_requests / max(wall_s, 1e-9),
        "wall_s": wall_s,
        "p50_ms": percentile_ms(latencies, 50),
        "p95_ms": percentile_ms(latencies, 95),
        "p99_ms": percentile_ms(latencies, 99),
    }


def test_serve_throughput_scales_with_workers(benchmark):
    session = make_trained_session()
    corpus = build_corpus(CORPUS_SIZE, seed=2026)
    requests = corpus.sources()

    # warm the construction cache + layout/scatter caches, pin the reference
    expected = session.predict_batch(requests, PLATFORM, dtype=None)

    # single-threaded inline baseline: the PR 3 soak shape
    baseline_passes = CLIENT_THREADS * PASSES_PER_CLIENT
    start = time.perf_counter()
    for _ in range(baseline_passes):
        np.testing.assert_array_equal(
            session.predict_batch(requests, PLATFORM, dtype=None), expected)
    baseline_s = time.perf_counter() - start
    baseline_rps = baseline_passes * len(requests) / max(baseline_s, 1e-9)

    results = {}
    for workers in WORKER_COUNTS:
        config = ServerConfig(num_workers=workers, max_batch_size=32,
                              batch_window_s=0.001)
        with Server(session, config) as server:
            results[workers] = run_clients(server, requests, expected)

    # micro-batch coalescing shape, recorded for the JSON report
    with Server(session, ServerConfig(num_workers=2, max_batch_size=16,
                                      batch_window_s=0.01)) as server:
        futures = [server.submit(spec, PLATFORM) for spec in requests]
        for future in futures:
            future.result(timeout=60)
        coalescing = server.stats()

    benchmark.pedantic(
        lambda: session.predict_batch(requests, PLATFORM, dtype=None),
        rounds=1, iterations=1)

    lines = [f"serving throughput ({len(requests)} kernels/wave, "
             f"{CLIENT_THREADS} client threads x {PASSES_PER_CLIENT} waves, "
             "float64, warm cache):",
             f"  inline single-thread baseline : {baseline_rps:8.0f} req/s"]
    for workers, row in results.items():
        lines.append(
            f"  {workers} worker(s)                   : "
            f"{row['requests_per_s']:8.0f} req/s   "
            f"p50 {row['p50_ms']:6.1f} ms  p95 {row['p95_ms']:6.1f} ms  "
            f"p99 {row['p99_ms']:6.1f} ms")
    best = max(WORKER_COUNTS,
               key=lambda workers: results[workers]["requests_per_s"])
    scaling = results[best]["requests_per_s"] / results[1]["requests_per_s"]
    cores = os.cpu_count() or 1
    lines.append(f"  best pool ({best} workers) vs 1    : {scaling:8.2f}x "
                 f"({cores} CPU core(s) available)")
    lines.append(f"  singles coalesced             : "
                 f"{coalescing.singles_submitted} requests into "
                 f"{coalescing.batches_executed} micro-batches "
                 f"(max {coalescing.max_coalesced})")
    report("\n".join(lines))

    pr3_path = os.path.join(os.path.dirname(__file__), "BENCH_pr3_synth_soak.json")
    pr3_warm_rps = None
    if os.path.exists(pr3_path):
        with open(pr3_path, encoding="utf-8") as handle:
            pr3_warm_rps = json.load(handle).get("warm_requests_per_s")

    report_json("BENCH_pr4_serve.json", {
        "corpus_size": len(requests),
        "client_threads": CLIENT_THREADS,
        "passes_per_client": PASSES_PER_CLIENT,
        "cpu_count": cores,
        "baseline_single_thread_rps": baseline_rps,
        "pr3_soak_warm_rps": pr3_warm_rps,
        "workers": {str(workers): row for workers, row in results.items()},
        "best_workers": best,
        "best_vs_single_worker": scaling,
        "coalescing": {
            "singles_submitted": coalescing.singles_submitted,
            "batches_executed": coalescing.batches_executed,
            "max_coalesced": coalescing.max_coalesced,
        },
        "quick_mode": QUICK,
    })

    # every configuration served bit-identical results (asserted per wave);
    # on parallel hardware the pool must beat one worker, on a single core
    # it must at least not collapse under the contention
    rates = {workers: round(row["requests_per_s"])
             for workers, row in results.items()}
    if cores >= 2:
        assert results[best]["requests_per_s"] > results[1]["requests_per_s"], (
            f"multi-worker throughput did not exceed the single-worker "
            f"baseline on {cores} cores: {rates}")
    else:
        assert results[best]["requests_per_s"] >= \
            0.6 * results[1]["requests_per_s"], (
            f"worker-pool overhead collapsed throughput on 1 core: {rates}")
    assert coalescing.max_coalesced >= 2, "micro-batching never coalesced"


PACKED_ROUNDS = 6 if QUICK else 10


def test_packed_forward_beats_per_graph_loop(benchmark):
    """PR 8 tentpole gate: the packed block-diagonal forward must serve a
    batch faster than predicting its graphs one by one, while staying
    float64 bit-identical to that per-graph loop.

    Three arms, interleaved round-robin with min-of-N per arm (a noisy
    neighbour inflates every arm instead of biasing one):

    * **per-graph loop** — one ``predict_batch([spec])`` call per request,
      the pre-PR-8 parity reference each packed result must match bit for
      bit,
    * **legacy collated** — ``packed_forward=False``: the old concatenated
      multi-graph forward whose scaling regression this PR fixes,
    * **packed** — the default ``packed_forward=True`` path: one fused
      block-diagonal forward per wave.
    """
    session = make_trained_session()
    requests = build_corpus(CORPUS_SIZE, seed=2026).sources()

    packed_server = Server(session, ServerConfig(num_workers=0))
    legacy_server = Server(session, ServerConfig(num_workers=0,
                                                packed_forward=False))

    def per_graph_wave():
        return np.concatenate([
            legacy_server.predict_batch([spec], PLATFORM, dtype=None)
            for spec in requests])

    def legacy_wave():
        return legacy_server.predict_batch(requests, PLATFORM, dtype=None)

    def packed_wave():
        return packed_server.predict_batch(requests, PLATFORM, dtype=None)

    arms = {"per_graph": per_graph_wave, "legacy": legacy_wave,
            "packed": packed_wave}

    # warm every cache (construction, layout, packed layout, scatter) and
    # pin the parity contract: packed == per-graph loop, bit for bit
    reference = per_graph_wave()
    np.testing.assert_array_equal(packed_wave(), reference)
    legacy_wave()

    best_s = {name: float("inf") for name in arms}
    for _ in range(PACKED_ROUNDS):
        for name, wave in arms.items():
            start = time.perf_counter()
            wave()
            best_s[name] = min(best_s[name], time.perf_counter() - start)
    rps = {name: len(requests) / elapsed for name, elapsed in best_s.items()}

    benchmark.pedantic(packed_wave, rounds=1, iterations=1)

    pr4_path = os.path.join(os.path.dirname(__file__), "BENCH_pr4_serve.json")
    pr4_baseline_rps = None
    if os.path.exists(pr4_path):
        with open(pr4_path, encoding="utf-8") as handle:
            pr4_baseline_rps = json.load(handle).get(
                "baseline_single_thread_rps")

    report("\n".join([
        f"packed vs per-graph serving ({len(requests)} kernels/wave, "
        f"min of {PACKED_ROUNDS} interleaved waves, float64, warm):",
        f"  per-graph loop (parity ref)   : {rps['per_graph']:8.1f} req/s",
        f"  legacy collated forward       : {rps['legacy']:8.1f} req/s",
        f"  packed block-diagonal forward : {rps['packed']:8.1f} req/s "
        f"({rps['packed'] / rps['per_graph']:.2f}x per-graph, "
        f"{rps['packed'] / rps['legacy']:.2f}x legacy)",
    ]))
    report_json("BENCH_pr8_packed.json", {
        "corpus_size": len(requests),
        "rounds": PACKED_ROUNDS,
        "per_graph_rps": rps["per_graph"],
        "legacy_collated_rps": rps["legacy"],
        "packed_rps": rps["packed"],
        "packed_vs_per_graph": rps["packed"] / rps["per_graph"],
        "packed_vs_legacy": rps["packed"] / rps["legacy"],
        "pr4_baseline_single_thread_rps": pr4_baseline_rps,
        "cpu_count": os.cpu_count() or 1,
        "quick_mode": QUICK,
    })

    # the regression this PR fixes: collating a batch used to be *slower*
    # than looping — packed must beat the legacy collated forward outright
    assert rps["packed"] > rps["legacy"], (
        f"packed forward did not beat the legacy collated path: {rps}")
    # and packed must keep up with the per-graph loop; min-of-interleaved
    # arms still jitters a few percent on a loaded single-core CI box, so
    # the floor carries a small noise allowance rather than a strict >=
    assert rps["packed"] >= 0.92 * rps["per_graph"], (
        f"packed forward fell behind the per-graph loop: {rps}")


RELIABILITY_ROUNDS = 3 if QUICK else 7
FAULT_POINT_CALLS = 20_000 if QUICK else 200_000


def test_reliability_overhead_faults_off(benchmark):
    """PR 7 regression guard: the reliability layer (deadline bookkeeping,
    breaker admission, retry wrapper, fault hooks with no injector) must
    cost < 5% on the clean serving path.

    A/B waves are interleaved and each arm takes its min-of-N, so a noisy
    neighbour inflates both arms instead of biasing the comparison.
    """
    from repro.reliability.faults import SITE_FORWARD, fault_point

    session = make_trained_session()
    requests = build_corpus(CORPUS_SIZE, seed=2027).sources()
    expected = session.predict_batch(requests, PLATFORM, dtype=None)

    plain = Server(session, ServerConfig(
        num_workers=0, max_retries=0, breaker_threshold=0))
    engaged = Server(session, ServerConfig(
        num_workers=0, default_deadline_s=30.0, max_queue_depth=256,
        max_retries=2, breaker_threshold=8))

    def wave(server: Server) -> float:
        start = time.perf_counter()
        got = server.predict_batch(requests, PLATFORM, dtype=None)
        elapsed = time.perf_counter() - start
        np.testing.assert_array_equal(got, expected)
        return elapsed

    wave(plain), wave(engaged)          # warm both paths
    plain_s, engaged_s = [], []
    for _ in range(RELIABILITY_ROUNDS):
        plain_s.append(wave(plain))
        engaged_s.append(wave(engaged))
    plain_min, engaged_min = min(plain_s), min(engaged_s)
    overhead_pct = (engaged_min - plain_min) / plain_min * 100.0

    # the hook itself: a global read + return when no injector is active
    start = time.perf_counter()
    for _ in range(FAULT_POINT_CALLS):
        fault_point(SITE_FORWARD, None)
    fault_point_ns = (time.perf_counter() - start) / FAULT_POINT_CALLS * 1e9

    benchmark.pedantic(lambda: wave(engaged), rounds=1, iterations=1)

    report("\n".join([
        f"reliability-layer overhead ({len(requests)} kernels/wave, "
        f"min of {RELIABILITY_ROUNDS} interleaved waves, faults off):",
        f"  plain wave (no reliability)   : {plain_min * 1000:8.2f} ms",
        f"  engaged wave (deadline/retry/ : {engaged_min * 1000:8.2f} ms",
        f"    breaker/admission)            ({overhead_pct:+.2f}%)",
        f"  fault_point (no injector)     : {fault_point_ns:8.1f} ns/call",
    ]))
    report_json("BENCH_pr7_reliability.json", {
        "corpus_size": len(requests),
        "rounds": RELIABILITY_ROUNDS,
        "plain_wave_ms": plain_min * 1000.0,
        "engaged_wave_ms": engaged_min * 1000.0,
        "overhead_pct": overhead_pct,
        "fault_point_ns": fault_point_ns,
        "cpu_count": os.cpu_count() or 1,
        "quick_mode": QUICK,
    })

    assert overhead_pct < 5.0, (
        f"reliability layer costs {overhead_pct:.2f}% on the clean path "
        f"(plain {plain_min * 1000:.2f} ms vs engaged "
        f"{engaged_min * 1000:.2f} ms); the faults-off budget is < 5%")
    assert fault_point_ns < 2_000, (
        f"fault_point no-injector fast path took {fault_point_ns:.0f} ns; "
        "it must stay a global read + return")
