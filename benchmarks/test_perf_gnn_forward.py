"""Micro-benchmark: seed per-relation-loop GNN forward vs vectorized kernels.

PR 2 replaced the Python loop over relations in ``RGATConv`` / ``RGCNConv``
with vectorized kernels over a cached relation-bucketed edge layout, and gave
the ``nn`` engine an inference fast path (``no_grad`` + float32).  This
benchmark measures, on a synthetic ~500-node / ~3k-edge, 8-relation graph:

* one RGAT / RGCN layer: ``forward_reference`` (the retained seed loop)
  vs the vectorized ``forward``,
* the end-to-end ``ParaGraphModel`` forward: seed loop with autodiff
  recording (what the seed's ``predict`` executed) vs the vectorized
  ``predict`` in float64 and in the float32 serving configuration,

asserts the >= 5x end-to-end speedup the serving tier relies on plus
float64 parity with the seed (atol=1e-9), appends the table to
the per-run report under ``benchmarks/out/`` and writes the raw timings
to ``BENCH_pr2.json``.

``REPRO_BENCH_QUICK=1`` (the CI smoke job) shrinks the graph and the repeat
count so the benchmark finishes in seconds; the speedup assertion then
relaxes to a sanity threshold because tiny graphs are overhead-dominated.
"""

import os
import time
import types

import numpy as np

from _reporting import report, report_json
from repro.gnn import ParaGraphModel, RGATConv, RGCNConv
from repro.nn import Tensor, no_grad
from repro.paragraph.encoders import GraphBatch

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

NUM_NODES = 120 if QUICK else 500
NUM_EDGES = 700 if QUICK else 3000
NUM_RELATIONS = 8
FEATURE_DIM = 70          # ~ vocabulary one-hot width + terminal flag
HIDDEN_DIM = 64
REPEATS = 5 if QUICK else 20
MIN_E2E_SPEEDUP = 2.0 if QUICK else 5.0


def synthetic_batch(seed=0):
    rng = np.random.default_rng(seed)
    return GraphBatch(
        node_features=rng.normal(size=(NUM_NODES, FEATURE_DIM)),
        edge_index=rng.integers(0, NUM_NODES, size=(2, NUM_EDGES)),
        edge_type=rng.integers(0, NUM_RELATIONS, size=NUM_EDGES),
        edge_weight=rng.random(NUM_EDGES),
        aux_features=rng.random((1, 2)),
        batch=np.zeros(NUM_NODES, dtype=np.int64),
        targets=np.zeros(1),
        num_graphs=1,
    )


def median_ms(fn, repeats=REPEATS):
    fn()                                   # warm up (fills the layout cache)
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1e3)
    return float(np.median(samples))


def use_reference_convs(model):
    """Monkeypatch every conv of *model* back to the seed per-relation loop."""
    for conv in model.convs:
        conv.forward = types.MethodType(RGATConv.forward_reference, conv)


def test_perf_gnn_forward():
    batch = synthetic_batch()
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(NUM_NODES, FEATURE_DIM)))

    # ---------------- per-layer kernels (autodiff recording on) ---------- #
    rgat = RGATConv(FEATURE_DIM, HIDDEN_DIM, NUM_RELATIONS,
                    rng=np.random.default_rng(0))
    rgat_args = (x, batch.edge_index, batch.edge_type, batch.edge_weight)
    rgat_seed_ms = median_ms(lambda: rgat.forward_reference(*rgat_args))
    rgat_vec_ms = median_ms(lambda: rgat.forward(*rgat_args))
    with no_grad():
        rgat_fused_ms = median_ms(lambda: rgat.forward(*rgat_args))

    rgcn = RGCNConv(FEATURE_DIM, HIDDEN_DIM, NUM_RELATIONS,
                    rng=np.random.default_rng(0))
    rgcn_seed_ms = median_ms(lambda: rgcn.forward_reference(*rgat_args))
    rgcn_vec_ms = median_ms(lambda: rgcn.forward(*rgat_args))

    # ---------------- end-to-end ParaGraphModel forward ------------------ #
    model = ParaGraphModel(node_feature_dim=FEATURE_DIM, hidden_dim=HIDDEN_DIM,
                           num_relations=NUM_RELATIONS, seed=0)
    model.eval()
    seed_model = ParaGraphModel(node_feature_dim=FEATURE_DIM, hidden_dim=HIDDEN_DIM,
                                num_relations=NUM_RELATIONS, seed=0)
    seed_model.load_state_dict(model.state_dict())
    seed_model.eval()
    use_reference_convs(seed_model)

    # the seed's predict() ran forward() with the autodiff graph recorded —
    # measure exactly that as the baseline
    e2e_seed_ms = median_ms(lambda: seed_model.forward(batch))
    e2e_vec_ms = median_ms(lambda: model.forward(batch))
    e2e_f64_ms = median_ms(lambda: model.predict(batch))
    e2e_f32_ms = median_ms(lambda: model.predict(batch, dtype=np.float32))

    # ---------------- parity ---------------------------------------------#
    reference = seed_model.predict(batch)
    vectorized = model.predict(batch)
    np.testing.assert_allclose(vectorized, reference, atol=1e-9)
    fast32 = model.predict(batch, dtype=np.float32)
    np.testing.assert_allclose(fast32, reference, rtol=1e-3, atol=1e-3)

    speedup_vec = e2e_seed_ms / e2e_vec_ms
    speedup_f64 = e2e_seed_ms / e2e_f64_ms
    speedup_f32 = e2e_seed_ms / e2e_f32_ms

    report(
        f"GNN forward micro-benchmark "
        f"({NUM_NODES} nodes, {NUM_EDGES} edges, {NUM_RELATIONS} relations"
        f"{', quick mode' if QUICK else ''}):\n"
        f"  RGAT layer   seed loop / vectorized  : {rgat_seed_ms:8.2f} ms / "
        f"{rgat_vec_ms:6.2f} ms  ({rgat_seed_ms / rgat_vec_ms:5.1f}x)\n"
        f"  RGAT layer   fused no_grad kernel    : {rgat_fused_ms:8.2f} ms  "
        f"({rgat_seed_ms / rgat_fused_ms:5.1f}x)\n"
        f"  RGCN layer   seed loop / vectorized  : {rgcn_seed_ms:8.2f} ms / "
        f"{rgcn_vec_ms:6.2f} ms  ({rgcn_seed_ms / rgcn_vec_ms:5.1f}x)\n"
        f"  model e2e    seed loop               : {e2e_seed_ms:8.2f} ms\n"
        f"  model e2e    vectorized (recording)  : {e2e_vec_ms:8.2f} ms  "
        f"({speedup_vec:5.1f}x)\n"
        f"  model e2e    no_grad float64         : {e2e_f64_ms:8.2f} ms  "
        f"({speedup_f64:5.1f}x)\n"
        f"  model e2e    no_grad float32 serving : {e2e_f32_ms:8.2f} ms  "
        f"({speedup_f32:5.1f}x)")

    report_json("BENCH_pr2.json", {
        "graph": {"num_nodes": NUM_NODES, "num_edges": NUM_EDGES,
                  "num_relations": NUM_RELATIONS, "feature_dim": FEATURE_DIM,
                  "hidden_dim": HIDDEN_DIM, "quick": QUICK},
        "per_layer_ms": {
            "rgat_seed": rgat_seed_ms, "rgat_vectorized": rgat_vec_ms,
            "rgat_fused_no_grad": rgat_fused_ms,
            "rgcn_seed": rgcn_seed_ms, "rgcn_vectorized": rgcn_vec_ms,
        },
        "end_to_end_ms": {
            "seed_loop": e2e_seed_ms,
            "vectorized_recording": e2e_vec_ms,
            "no_grad_float64": e2e_f64_ms,
            "no_grad_float32": e2e_f32_ms,
        },
        "speedup": {
            "vectorized_recording": speedup_vec,
            "no_grad_float64": speedup_f64,
            "no_grad_float32": speedup_f32,
        },
        "parity": {"float64_atol": 1e-9, "float32_rtol": 1e-3},
    })

    assert speedup_f32 >= MIN_E2E_SPEEDUP, (
        f"serving fast path must be >= {MIN_E2E_SPEEDUP}x over the seed loop, "
        f"got {speedup_f32:.2f}x")
