"""Table III — RMSE and normalized RMSE of the ParaGraph model per accelerator.

The paper reports RMSE between 280 ms and 4325 ms and normalized RMSE between
4e-3 and 1e-2.  Absolute values here differ (the datasets are simulated and
orders of magnitude smaller than the paper's 26 000 points); the shape checks
are: every platform trains to a finite, sub-unity normalized RMSE, and the
normalized error is of the same order of magnitude across accelerators
(ParaGraph's hardware-independence claim).
"""

import numpy as np

from repro.evaluation import format_table, table3_rows

from _reporting import report


def test_table3_rmse_per_platform(benchmark, main_result):
    rows = benchmark.pedantic(table3_rows, args=(main_result,), rounds=1, iterations=1)
    report("\nTable III — Experimental results\n" +
          format_table(rows, ("platform", "rmse_ms", "normalized_rmse")))
    assert len(rows) == 4
    normalized = np.array([row["normalized_rmse"] for row in rows])
    assert np.all(np.isfinite(normalized))
    assert np.all(normalized < 1.0)
    # same order of magnitude across accelerators (within ~10x of each other)
    assert normalized.max() / max(normalized.min(), 1e-9) < 10.0
