"""Table I — benchmark applications, kernel counts and domains.

Regenerates the application inventory from the kernel registry and checks it
matches the paper's Table I (9 applications, 17 kernels).  The benchmarked
operation is the full registry parse: every kernel source through the
frontend plus its static analysis.
"""

from repro.advisor import analyze_kernel
from repro.evaluation import format_table
from repro.kernels import all_kernels, table1_rows

from _reporting import report


def regenerate_table1():
    rows = table1_rows()
    for kernel in all_kernels():
        analyze_kernel(kernel)            # full frontend + analysis per kernel
    return rows


def test_table1_applications(benchmark):
    rows = benchmark.pedantic(regenerate_table1, rounds=1, iterations=1)
    report("\nTable I — Benchmark Applications\n" +
          format_table(rows, ("application", "num_kernels", "domain")))
    assert len(rows) == 9
    assert sum(row["num_kernels"] for row in rows) == 17
