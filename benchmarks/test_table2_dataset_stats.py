"""Table II — data points collected on each accelerator.

Regenerates the per-platform dataset statistics (sample counts, runtime
range, standard deviation).  Expected shape from the paper: the GPU datasets
have roughly twice as many points as the CPU datasets (four GPU variants vs.
two CPU variants), and the CPU runtimes are far more dispersed (much larger
standard deviation relative to their range).
"""

from repro.evaluation import format_table, table2_rows

from _reporting import report


def test_table2_dataset_statistics(benchmark, main_result):
    rows = benchmark.pedantic(table2_rows, args=(main_result,), rounds=1, iterations=1)
    report("\nTable II — Data points collected on each accelerator\n" +
          format_table(rows, ("platform", "data_points", "runtime_min_ms",
                              "runtime_max_ms", "std_dev_ms")))
    by_platform = {row["platform"]: row for row in rows}
    assert set(by_platform) == {"IBM POWER9", "NVIDIA V100", "AMD EPYC7401", "AMD MI50"}
    # GPU datasets have twice the data points of CPU datasets (4 vs 2 variants)
    assert by_platform["NVIDIA V100"]["data_points"] == 2 * by_platform["IBM POWER9"]["data_points"]
    assert by_platform["AMD MI50"]["data_points"] == 2 * by_platform["AMD EPYC7401"]["data_points"]
    for row in rows:
        assert row["runtime_max_ms"] > row["runtime_min_ms"]
        assert row["std_dev_ms"] > 0
