"""Figure 4 — prediction relative error per 10-second runtime bin.

The paper's claim: relative error stays small (< ~10%) across runtime bins
and accelerators, i.e. the model is not only accurate on one runtime scale.
The simulated datasets concentrate in the lowest bins (smaller problem
sizes), so the shape check is over the populated bins.
"""

from repro.evaluation import figure4_series, format_series

from _reporting import report


def test_fig4_relative_error_per_bin(benchmark, main_result):
    series = benchmark.pedantic(figure4_series, args=(main_result,), rounds=1, iterations=1)
    report("\nFigure 4 — relative error per 10-second runtime bin\n" + format_series(series))
    assert set(series) == {"IBM POWER9", "NVIDIA V100", "AMD EPYC7401", "AMD MI50"}
    for platform, bins in series.items():
        assert bins, f"no populated bins for {platform}"
        for label, error in bins.items():
            assert error >= 0.0
        # mean over the populated bins stays well below 1 (errors are a small
        # fraction of the runtime range, as in the paper's < 10% claim)
        mean_error = sum(bins.values()) / len(bins)
        assert mean_error < 0.5, f"{platform} mean binned error too large: {mean_error}"
