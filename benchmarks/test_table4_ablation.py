"""Table IV — ablation: Raw AST vs Augmented AST vs ParaGraph RMSE.

The paper's key qualitative result: adding the augmentation edges improves
over the raw AST, and adding the edge weights (full ParaGraph) improves
further — on every accelerator.  The benchmark fixture runs the ablation on
the AMD MI50 (the platform Fig. 7 uses); the shape check is the ordering
``ParaGraph < Raw AST`` with ParaGraph also at least matching the Augmented
AST.
"""

from repro.evaluation import format_table
from repro.hardware import MI50

from _reporting import report


def test_table4_ablation_rmse(benchmark, ablation_result):
    rows = benchmark.pedantic(ablation_result.rmse_table, rounds=1, iterations=1)
    report("\nTable IV — RMSE (ms) with and without edges/weights\n" +
          format_table(rows, ("platform", "raw_ast", "augmented_ast", "paragraph")))
    row = {r["platform"]: r for r in rows}[MI50.name]
    assert row["raw_ast"] > 0 and row["augmented_ast"] > 0 and row["paragraph"] > 0
    # headline ordering: the full ParaGraph representation beats the raw AST
    assert row["paragraph"] < row["raw_ast"], (
        "ParaGraph should outperform the raw AST representation")
    # and the weighted representation should not be worse than the unweighted
    # augmented AST by more than a small tolerance
    assert row["paragraph"] <= row["augmented_ast"] * 1.15
