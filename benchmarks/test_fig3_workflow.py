"""Figure 3 — the end-to-end workflow (variants → graphs → runtimes → model).

Times one compact end-to-end run of the pipeline on a single platform and
checks that every stage produced output: configurations generated, runtimes
collected, graphs encoded, a model trained, and predictions returned in
microseconds.
"""

from repro.hardware import V100
from repro.kernels import get_kernel
from repro.ml.trainer import TrainingConfig
from repro.pipeline import SweepConfig, WorkflowConfig, run_workflow


def run_compact_workflow():
    config = WorkflowConfig(
        sweep=SweepConfig(size_scales=(0.5, 1.0), team_counts=(64,), thread_counts=(8, 64),
                          kernels=[get_kernel("matmul"), get_kernel("matvec"),
                                   get_kernel("laplace_sweep"), get_kernel("pf_normalize")]),
        training=TrainingConfig(epochs=10, batch_size=16, learning_rate=2e-3, seed=0),
        hidden_dim=16,
        seed=0,
    )
    return run_workflow(config, platforms=(V100,))


def test_fig3_end_to_end_workflow(benchmark):
    result = benchmark.pedantic(run_compact_workflow, rounds=1, iterations=1)
    platform_result = result.platforms["NVIDIA V100"]
    assert len(platform_result.dataset) > 20
    assert len(platform_result.history) == 10
    predictions = platform_result.trainer.predict(platform_result.validation)
    assert predictions.shape[0] == len(platform_result.validation)
    assert (predictions >= 0).all()
