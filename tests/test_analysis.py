"""Unit tests for ``repro.analysis``: issue model, registry, checkers, runner,
CLI, and the zero-false-positive contract on the seed benchmark kernels."""

import json

import pytest

from repro.analysis import (
    AnalyzerRunner,
    Issue,
    Report,
    ReportError,
    SCHEMA_VERSION,
    Severity,
    checker_registry,
    default_checker_names,
    get_checker,
)
from repro.analysis.cli import main as cli_main


def analyze(source, checkers=None, env=None):
    return AnalyzerRunner(checkers=checkers, env=env).analyze_source(source)


# --------------------------------------------------------------------- #
class TestIssueModel:
    def test_render_is_compiler_style(self):
        issue = Issue(checker="omp-race", severity=Severity.ERROR,
                      message="bad", file="k.c", line=3, column=7,
                      fix_hint="use atomic")
        assert issue.render() == \
            "k.c:3:7: error: [omp-race] bad (hint: use atomic)"

    def test_severity_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO
        assert max([Severity.INFO, Severity.ERROR]) is Severity.ERROR

    def test_issue_round_trip(self):
        issue = Issue(checker="dead-store", severity=Severity.WARNING,
                      message="m", variable="x", function="f")
        assert Issue.from_dict(issue.to_dict()) == issue

    def test_issue_rejects_bad_severity(self):
        with pytest.raises(ReportError, match="severity"):
            Issue.from_dict({"checker": "c", "message": "m",
                             "severity": "catastrophic"})

    def test_report_round_trip_and_schema(self):
        report = analyze("void f(void) { double x; double y = x; y = y; }")
        payload = report.to_dict()
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["generator"] == "repro.analysis"
        assert payload["summary"]["total"] == len(report.issues)
        assert Report.from_json(report.to_json()) == report

    def test_report_rejects_wrong_version(self):
        payload = Report().to_dict()
        payload["schema_version"] = 99
        with pytest.raises(ReportError, match="schema_version"):
            Report.from_dict(payload)

    def test_report_merge_preserves_order_and_files(self):
        first = analyze("void f(void) { double x; double y = x + 1.0; }")
        second = Report(files=("other.c",), checkers=first.checkers)
        merged = first.merged(second)
        assert set(merged.files) == set(first.files) | {"other.c"}
        assert merged.count() == first.count()


# --------------------------------------------------------------------- #
class TestRegistry:
    def test_all_builtins_registered(self):
        assert set(default_checker_names()) == {
            "uninit-read", "array-bounds", "dead-store", "omp-race",
            "loop-carried-dep"}

    def test_get_checker_instantiates(self):
        checker = get_checker("omp-race")
        assert checker.name == "omp-race"
        assert checker.default_severity is Severity.ERROR

    def test_unknown_checker_raises(self):
        with pytest.raises(KeyError, match="unknown checker"):
            AnalyzerRunner(checkers=["no-such-checker"])

    def test_custom_checker_plugs_in(self):
        from repro.analysis import Checker, register_checker

        @register_checker("always-warn")
        class AlwaysWarn(Checker):
            name = "always-warn"

            def check(self, ctx):
                yield ctx.issue(self, "hello")

        try:
            report = analyze("void f(void) { ; }", checkers=["always-warn"])
            assert [i.checker for i in report.issues] == ["always-warn"]
        finally:
            checker_registry.unregister("always-warn")


# --------------------------------------------------------------------- #
class TestUninitRead:
    def test_flags_read_before_write(self):
        report = analyze(
            "void f(double *o) { double s; o[0] = s * 2.0; }",
            checkers=["uninit-read"])
        assert [i.variable for i in report.issues] == ["s"]
        assert report.issues[0].severity is Severity.ERROR

    def test_self_referential_init_is_flagged(self):
        # C evaluates the right-hand side first, so `x = x + 1` reads
        # uninitialized x
        report = analyze("void f(void) { double x; x = x + 1.0; }",
                         checkers=["uninit-read"])
        assert [i.variable for i in report.issues] == ["x"]

    def test_initializer_silences(self):
        report = analyze(
            "void f(double *o) { double s = 1.0; o[0] = s; }",
            checkers=["uninit-read"])
        assert not report.issues

    def test_write_before_read_silences(self):
        report = analyze(
            "void f(double *o) { double s; s = 2.0; o[0] = s; }",
            checkers=["uninit-read"])
        assert not report.issues

    def test_address_taken_silences(self):
        report = analyze(
            "void init(double *p);\n"
            "void f(double *o) { double s; init(&s); o[0] = s; }",
            checkers=["uninit-read"])
        assert not report.issues


class TestArrayBounds:
    def test_constant_index_past_extent(self):
        report = analyze(
            "void f(double v) { double b[4]; b[0] = v; b[4] = v; v = b[0]; }",
            checkers=["array-bounds"])
        assert len(report.issues) == 1
        assert report.issues[0].variable == "b"

    def test_counter_range_overflow(self):
        report = analyze(
            "void f(double *in) {\n"
            "  double b[8];\n"
            "  double t = 0.0;\n"
            "  for (int i = 0; i <= 8; i++) { b[i] = in[i]; }\n"
            "  t = b[0];\n"
            "}", checkers=["array-bounds"])
        assert [i.variable for i in report.issues] == ["b"]
        assert "extent is 8" in report.issues[0].message

    def test_negative_offset(self):
        report = analyze(
            "void f(double v) {\n"
            "  double b[8];\n"
            "  for (int i = 0; i < 8; i++) { b[i] = v; }\n"
            "  for (int j = 0; j < 4; j++) { v = b[j - 1]; }\n"
            "}", checkers=["array-bounds"])
        assert len(report.issues) == 1
        assert "below zero" in report.issues[0].message

    def test_in_bounds_loop_is_silent(self):
        report = analyze(
            "void f(double v) {\n"
            "  double b[8];\n"
            "  for (int i = 0; i < 8; i++) { b[i] = v; }\n"
            "  v = b[7];\n"
            "}", checkers=["array-bounds"])
        assert not report.issues

    def test_pointer_params_have_no_extent(self):
        report = analyze(
            "void f(int n, double *a) {\n"
            "  for (int i = 0; i <= n; i++) { a[i] = 0.0; }\n"
            "}", checkers=["array-bounds"])
        assert not report.issues

    def test_sizes_env_folds_symbolic_extents(self):
        source = (
            "void f(int n, double v) {\n"
            "  double b[n];\n"
            "  for (int i = 0; i < 10; i++) { b[i] = v; }\n"
            "  v = b[0];\n"
            "}")
        assert not analyze(source, checkers=["array-bounds"]).issues
        report = analyze(source, checkers=["array-bounds"], env={"n": 8})
        assert len(report.issues) == 1

    def test_reassigned_scalar_index_not_folded(self):
        # constant folding sees `k = 0`, but k is later reassigned: the
        # checker must not trust the initializer
        report = analyze(
            "void f(double v) {\n"
            "  double b[4];\n"
            "  int k = 0;\n"
            "  k = 3;\n"
            "  b[k] = v;\n"
            "  v = b[k];\n"
            "}", checkers=["array-bounds"])
        assert not report.issues


class TestDeadStore:
    def test_unused_variable(self):
        report = analyze("void f(void) { double x; }",
                         checkers=["dead-store"])
        assert [i.variable for i in report.issues] == ["x"]
        assert "never used" in report.issues[0].message

    def test_stores_never_read(self):
        report = analyze(
            "void f(void) { double x = 0.0; x = 1.0; x = 2.0; }",
            checkers=["dead-store"])
        assert [i.variable for i in report.issues] == ["x"]
        assert "never read" in report.issues[0].message

    def test_compound_assignment_counts_as_read(self):
        report = analyze(
            "void f(double *a, int n) {\n"
            "  double s = 0.0;\n"
            "  for (int i = 0; i < n; i++) { s += a[i]; }\n"
            "}", checkers=["dead-store"])
        assert not report.issues

    def test_read_silences(self):
        report = analyze(
            "void f(double *o) { double x = 1.0; x = 2.0; o[0] = x; }",
            checkers=["dead-store"])
        assert not report.issues

    def test_escaped_variable_silences(self):
        report = analyze(
            "void g(double *p);\n"
            "void f(void) { double x; g(&x); }",
            checkers=["dead-store"])
        assert not report.issues


class TestOMPRace:
    RACY_SCALAR = (
        "void f(int n, double *a) {\n"
        "  double s = 0.0;\n"
        "  #pragma omp parallel for\n"
        "  for (int i = 0; i < n; i++) { s += a[i]; }\n"
        "  a[0] = s;\n"
        "}")

    def test_shared_scalar_update_flagged_with_reduction_hint(self):
        report = analyze(self.RACY_SCALAR, checkers=["omp-race"])
        assert [i.variable for i in report.issues] == ["s"]
        assert "reduction" in report.issues[0].fix_hint

    def test_reduction_clause_silences(self):
        source = self.RACY_SCALAR.replace(
            "parallel for", "parallel for reduction(+:s)")
        assert not analyze(source, checkers=["omp-race"]).issues

    def test_private_clause_silences(self):
        source = (
            "void f(int n, double *a) {\n"
            "  double t = 0.0;\n"
            "  #pragma omp parallel for private(t)\n"
            "  for (int i = 0; i < n; i++) { t = a[i]; a[i] = t * 2.0; }\n"
            "}")
        assert not analyze(source, checkers=["omp-race"]).issues

    def test_counter_indexed_write_is_safe(self):
        source = (
            "void f(int n, double *a) {\n"
            "  #pragma omp parallel for\n"
            "  for (int i = 0; i < n; i++) { a[i] = 2.0 * a[i]; }\n"
            "}")
        assert not analyze(source, checkers=["omp-race"]).issues

    def test_counter_independent_element_write_flagged(self):
        source = (
            "void f(int n, double *a, double *b) {\n"
            "  #pragma omp parallel for\n"
            "  for (int i = 0; i < n; i++) { a[0] = a[0] + b[i]; }\n"
            "}")
        report = analyze(source, checkers=["omp-race"])
        assert [i.variable for i in report.issues] == ["a"]

    def test_inner_serial_counter_write_flagged(self):
        # a[j] in a parallel-i loop: every thread sweeps the same elements
        source = (
            "void f(int n, double *a) {\n"
            "  #pragma omp parallel for\n"
            "  for (int i = 0; i < n; i++) {\n"
            "    for (int j = 0; j < 4; j++) { a[j] = a[j] + 1.0; }\n"
            "  }\n"
            "}")
        report = analyze(source, checkers=["omp-race"])
        assert [i.variable for i in report.issues] == ["a"]

    def test_collapse_covers_inner_counter(self):
        source = (
            "void f(int n, int m, double *a) {\n"
            "  #pragma omp parallel for collapse(2)\n"
            "  for (int i = 0; i < n; i++)\n"
            "    for (int j = 0; j < m; j++)\n"
            "      a[i * m + j] = 1.0;\n"
            "}")
        assert not analyze(source, checkers=["omp-race"]).issues

    def test_atomic_silences(self):
        source = (
            "void f(int n, double *a, double *b) {\n"
            "  #pragma omp parallel for\n"
            "  for (int i = 0; i < n; i++) {\n"
            "    #pragma omp atomic\n"
            "    a[0] = a[0] + b[i];\n"
            "  }\n"
            "}")
        assert not analyze(source, checkers=["omp-race"]).issues

    def test_simd_is_not_threaded(self):
        source = (
            "void f(int n, double *a) {\n"
            "  double s = 0.0;\n"
            "  #pragma omp simd\n"
            "  for (int i = 0; i < n; i++) { s += a[i]; }\n"
            "  a[0] = s;\n"
            "}")
        assert not analyze(source, checkers=["omp-race"]).issues

    def test_loop_local_scalar_is_private(self):
        source = (
            "void f(int n, double *a) {\n"
            "  #pragma omp parallel for\n"
            "  for (int i = 0; i < n; i++) {\n"
            "    double t = a[i] * 2.0;\n"
            "    a[i] = t;\n"
            "  }\n"
            "}")
        assert not analyze(source, checkers=["omp-race"]).issues


class TestLoopCarriedDep:
    def test_recurrence_flagged_info_when_serial(self):
        source = (
            "void f(int n, double *a) {\n"
            "  for (int i = 1; i < n; i++) { a[i] = a[i - 1] + 1.0; }\n"
            "}")
        report = analyze(source, checkers=["loop-carried-dep"])
        assert len(report.issues) == 1
        assert report.issues[0].severity is Severity.INFO

    def test_recurrence_warns_when_parallelized(self):
        source = (
            "void f(int n, double *a) {\n"
            "  #pragma omp parallel for\n"
            "  for (int i = 1; i < n; i++) { a[i] = a[i - 1] + 1.0; }\n"
            "}")
        report = analyze(source, checkers=["loop-carried-dep"])
        assert len(report.issues) == 1
        assert report.issues[0].severity is Severity.WARNING

    def test_same_offset_is_independent(self):
        source = (
            "void f(int n, double *a, double *b) {\n"
            "  for (int i = 0; i < n; i++) { a[i] = a[i] + b[i]; }\n"
            "}")
        assert not analyze(source, checkers=["loop-carried-dep"]).issues

    def test_distinct_arrays_are_independent(self):
        source = (
            "void f(int n, double *a, double *b) {\n"
            "  for (int i = 1; i < n; i++) { a[i] = b[i - 1] + b[i + 1]; }\n"
            "}")
        assert not analyze(source, checkers=["loop-carried-dep"]).issues


# --------------------------------------------------------------------- #
class TestRunner:
    def test_parse_errors_become_frontend_issues(self):
        report = analyze("void f( {")
        assert len(report.issues) == 1
        assert report.issues[0].checker == "frontend"
        assert report.issues[0].severity is Severity.ERROR
        assert not report.ok

    def test_missing_file_becomes_frontend_issue(self, tmp_path):
        report = AnalyzerRunner().analyze_file(tmp_path / "nope.c")
        assert report.issues[0].checker == "frontend"

    def test_multi_file_reports_merge(self, tmp_path):
        good = tmp_path / "good.c"
        good.write_text("void g(double *o) { o[0] = 1.0; }\n")
        bad = tmp_path / "bad.c"
        bad.write_text("void b(double *o) { double x; o[0] = x; }\n")
        report = AnalyzerRunner().analyze_paths([good, bad])
        assert set(report.files) == {str(good), str(bad)}
        assert [i.checker for i in report.issues] == ["uninit-read"]

    def test_issues_sorted_by_location(self):
        report = analyze(
            "void f(double *o) {\n"
            "  double x;\n"
            "  double y;\n"
            "  o[0] = y;\n"
            "  o[1] = x;\n"
            "}", checkers=["uninit-read"])
        assert [i.variable for i in report.issues] == ["y", "x"]
        assert [i.line for i in report.issues] == [4, 5]

    def test_seed_kernels_and_variants_are_clean(self):
        # the acceptance bar: zero false positives on every registered
        # benchmark kernel and every advisor variant of it
        from repro.api.registries import kernel_registry
        from repro.advisor.transformations import generate_all_variants

        runner = AnalyzerRunner()
        for name, kernel in kernel_registry.items():
            report = runner.analyze_source(kernel.source, file=name)
            assert not report.issues, \
                f"{name}: {[i.render() for i in report.issues]}"
            for variant in generate_all_variants(kernel):
                report = runner.analyze_source(variant.source,
                                               file=variant.name)
                assert not report.issues, \
                    f"{variant.name}: {[i.render() for i in report.issues]}"


# --------------------------------------------------------------------- #
class TestCLI:
    def test_text_mode(self, tmp_path, capsys):
        path = tmp_path / "k.c"
        path.write_text("void f(double *o) { double x; o[0] = x; }\n")
        assert cli_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "[uninit-read]" in out and "1 file analyzed" in out

    def test_json_mode_schema(self, tmp_path, capsys):
        path = tmp_path / "k.c"
        path.write_text("void f(double *o) { o[0] = 2.0; }\n")
        assert cli_main(["--json", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["issues"] == []
        assert Report.from_dict(payload) == Report.from_dict(payload)

    def test_checker_selection(self, tmp_path, capsys):
        path = tmp_path / "k.c"
        path.write_text("void f(double *o) { double x; double y; o[0] = x; }\n")
        assert cli_main(["--checkers", "dead-store", str(path)]) == 0
        out = capsys.readouterr().out
        assert "[dead-store]" in out and "[uninit-read]" not in out

    def test_strict_exit_code(self, tmp_path, capsys):
        path = tmp_path / "k.c"
        path.write_text("void f(double *o) { double x; o[0] = x; }\n")
        assert cli_main(["--strict", str(path)]) == 1
        assert cli_main([str(path)]) == 0

    def test_sizes_flag(self, tmp_path, capsys):
        path = tmp_path / "k.c"
        path.write_text(
            "void f(int n, double v) {\n"
            "  double b[n];\n"
            "  for (int i = 0; i < 10; i++) { b[i] = v; }\n"
            "  v = b[0];\n"
            "}\n")
        assert cli_main(["--strict", "--sizes", "n=8", str(path)]) == 1
        capsys.readouterr()

    def test_list_checkers(self, capsys):
        assert cli_main(["--list-checkers"]) == 0
        out = capsys.readouterr().out
        for name in default_checker_names():
            assert name in out

    def test_usage_error_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main([])
        assert excinfo.value.code == 2
        capsys.readouterr()
