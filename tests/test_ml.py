"""Tests for scalers, metrics, dataset handling, splitting and the trainer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clang import analyze, parse_snippet
from repro.gnn import ParaGraphModel
from repro.ml import (
    GraphDataset,
    LogMinMaxScaler,
    MinMaxScaler,
    StandardScaler,
    Trainer,
    TrainingConfig,
    binned_relative_error,
    group_split,
    k_fold_indices,
    mean_relative_error,
    normalized_rmse,
    pearson_correlation,
    per_group_relative_error,
    r2_score,
    regression_report,
    relative_error,
    rmse,
    runtime_range,
    train_val_split,
)
from repro.paragraph import GraphEncoder, build_paragraph

finite_arrays = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=2, max_size=40)


class TestScalers:
    def test_minmax_maps_to_unit_interval(self):
        scaler = MinMaxScaler()
        data = np.array([[1.0], [5.0], [9.0]])
        scaled = scaler.fit_transform(data)
        assert scaled.min() == 0.0 and scaled.max() == 1.0

    def test_minmax_inverse_round_trip(self):
        scaler = MinMaxScaler()
        data = np.random.default_rng(0).normal(size=(20, 3)) * 100
        scaled = scaler.fit_transform(data)
        np.testing.assert_allclose(scaler.inverse_transform(scaled), data, atol=1e-9)

    def test_minmax_constant_column(self):
        scaler = MinMaxScaler()
        data = np.array([[5.0], [5.0], [5.0]])
        scaled = scaler.fit_transform(data)
        assert np.all(np.isfinite(scaled))

    def test_minmax_custom_range(self):
        scaler = MinMaxScaler(feature_range=(-1.0, 1.0))
        scaled = scaler.fit_transform(np.array([0.0, 10.0]))
        assert scaled.tolist() == [-1.0, 1.0]

    def test_minmax_invalid_range_raises(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_range=(1.0, 0.0))

    def test_unfitted_scaler_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.array([1.0]))

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            MinMaxScaler().fit(np.zeros((0, 2)))

    def test_standard_scaler_zero_mean_unit_std(self):
        scaler = StandardScaler()
        data = np.random.default_rng(1).normal(5.0, 3.0, size=(200, 2))
        scaled = scaler.fit_transform(data)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_standard_scaler_round_trip(self):
        scaler = StandardScaler()
        data = np.random.default_rng(2).normal(size=(30, 4))
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.fit_transform(data)), data, atol=1e-9)

    def test_log_scaler_rejects_negative(self):
        with pytest.raises(ValueError):
            LogMinMaxScaler().fit(np.array([-1.0, 2.0]))

    def test_log_scaler_round_trip(self):
        scaler = LogMinMaxScaler()
        data = np.array([1.0, 100.0, 1e6, 0.5])
        scaled = scaler.fit_transform(data)
        assert scaled.min() >= 0.0 and scaled.max() <= 1.0
        np.testing.assert_allclose(scaler.inverse_transform(scaled), data, rtol=1e-9)

    def test_1d_shape_preserved(self):
        scaler = MinMaxScaler()
        out = scaler.fit_transform(np.array([1.0, 2.0, 3.0]))
        assert out.shape == (3,)

    @given(finite_arrays)
    @settings(max_examples=40, deadline=None)
    def test_minmax_output_in_range_property(self, values):
        data = np.array(values)
        scaled = MinMaxScaler().fit_transform(data)
        assert np.all(scaled >= -1e-12) and np.all(scaled <= 1.0 + 1e-12)

    @given(finite_arrays)
    @settings(max_examples=40, deadline=None)
    def test_standard_round_trip_property(self, values):
        data = np.array(values)
        scaler = StandardScaler()
        recovered = scaler.inverse_transform(scaler.fit_transform(data))
        np.testing.assert_allclose(recovered, data, atol=1e-6, rtol=1e-6)


class TestMetrics:
    def test_rmse_zero_for_perfect_prediction(self):
        assert rmse([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_rmse_known_value(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_rmse_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            rmse([1.0], [1.0, 2.0])

    def test_rmse_empty_raises(self):
        with pytest.raises(ValueError):
            rmse([], [])

    def test_normalized_rmse_definition(self):
        actual = [0.0, 100.0]
        predicted = [10.0, 90.0]
        assert normalized_rmse(actual, predicted) == pytest.approx(rmse(actual, predicted) / 100.0)

    def test_runtime_range_degenerate(self):
        assert runtime_range([5.0, 5.0]) == 1.0

    def test_relative_error_per_sample(self):
        errors = relative_error([0.0, 100.0], [10.0, 100.0])
        np.testing.assert_allclose(errors, [0.1, 0.0])

    def test_mean_relative_error(self):
        assert mean_relative_error([0.0, 100.0], [10.0, 100.0]) == pytest.approx(0.05)

    def test_binned_relative_error_labels(self):
        actual_us = np.array([5e6, 15e6, 205e6])      # 5 s, 15 s, 205 s
        predicted = actual_us * 1.01
        bins = binned_relative_error(actual_us, predicted)
        assert "0-10" in bins and "10-20" in bins and "100 <" in bins

    def test_binned_relative_error_empty_bins_omitted(self):
        bins = binned_relative_error([1e6], [1e6])
        assert list(bins) == ["0-10"]

    def test_per_group_relative_error(self):
        groups = ["MM", "MM", "NN"]
        result = per_group_relative_error([1.0, 2.0, 3.0], [1.0, 2.0, 2.0], groups)
        assert set(result) == {"MM", "NN"}
        assert result["MM"] == pytest.approx(0.0)

    def test_per_group_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            per_group_relative_error([1.0], [1.0], ["a", "b"])

    def test_pearson_perfect_correlation(self):
        assert pearson_correlation([1.0, 2.0, 3.0], [2.0, 4.0, 6.0]) == pytest.approx(1.0)

    def test_pearson_constant_input(self):
        assert pearson_correlation([1.0, 1.0], [1.0, 2.0]) == 0.0

    def test_r2_perfect(self):
        assert r2_score([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == pytest.approx(1.0)

    def test_regression_report_keys(self):
        report = regression_report([1.0, 2.0, 4.0], [1.1, 2.2, 3.6])
        assert set(report) == {"rmse", "normalized_rmse", "mae",
                               "mean_relative_error", "pearson", "r2"}

    @given(finite_arrays)
    @settings(max_examples=40, deadline=None)
    def test_rmse_non_negative_and_zero_iff_equal(self, values):
        actual = np.array(values)
        assert rmse(actual, actual) == 0.0
        shifted = actual + 1.0
        assert rmse(actual, shifted) > 0.0


def make_dataset(n=12, seed=0):
    rng = np.random.default_rng(seed)
    encoder = GraphEncoder()
    samples = []
    for i in range(n):
        bound = int(rng.integers(4, 64))
        graph = build_paragraph(analyze(parse_snippet(
            f"for (int i = 0; i < {bound}; i++) {{ a[i] = i * 2.0; }}")))
        samples.append(encoder.encode(
            graph, num_teams=int(rng.integers(1, 8)), num_threads=int(rng.integers(1, 32)),
            target=float(bound) * 100.0,
            metadata={"application": "MM" if i % 2 == 0 else "NN"}))
    return encoder, GraphDataset(samples, name="test")


class TestDatasetAndSplit:
    def test_len_and_iteration(self):
        _, dataset = make_dataset(5)
        assert len(dataset) == 5
        assert len(list(dataset)) == 5

    def test_targets_array(self):
        _, dataset = make_dataset(4)
        assert dataset.targets().shape == (4,)

    def test_metadata_column(self):
        _, dataset = make_dataset(4)
        assert set(dataset.metadata_column("application")) == {"MM", "NN"}

    def test_filter(self):
        _, dataset = make_dataset(6)
        mm_only = dataset.filter(lambda s: s.metadata["application"] == "MM")
        assert len(mm_only) == 3

    def test_statistics_keys(self):
        _, dataset = make_dataset(4)
        stats = dataset.statistics()
        assert set(stats) == {"count", "min", "max", "std", "mean"}
        assert stats["count"] == 4

    def test_batches_cover_all_samples(self):
        _, dataset = make_dataset(10)
        total = sum(batch.num_graphs for batch in dataset.batches(3))
        assert total == 10

    def test_batches_invalid_size(self):
        _, dataset = make_dataset(3)
        with pytest.raises(ValueError):
            list(dataset.batches(0))

    def test_slicing_returns_dataset(self):
        _, dataset = make_dataset(6)
        assert isinstance(dataset[:3], GraphDataset)
        assert len(dataset[:3]) == 3

    def test_train_val_split_ratio(self):
        _, dataset = make_dataset(20)
        train, val = train_val_split(dataset, 0.9, seed=0)
        assert len(train) == 18 and len(val) == 2

    def test_split_is_deterministic_per_seed(self):
        _, dataset = make_dataset(20)
        first = train_val_split(dataset, 0.8, seed=3)
        second = train_val_split(dataset, 0.8, seed=3)
        assert [s.name for s in first[0]] == [s.name for s in second[0]]

    def test_split_partitions_without_overlap(self):
        _, dataset = make_dataset(15)
        train, val = train_val_split(dataset, 0.8, seed=1)
        train_ids = {id(s) for s in train}
        val_ids = {id(s) for s in val}
        assert not train_ids & val_ids
        assert len(train_ids | val_ids) == 15

    def test_split_invalid_fraction(self):
        _, dataset = make_dataset(4)
        with pytest.raises(ValueError):
            train_val_split(dataset, 1.5)

    def test_split_too_few_samples(self):
        _, dataset = make_dataset(1)
        with pytest.raises(ValueError):
            train_val_split(dataset)

    def test_k_fold_indices_cover_everything(self):
        folds = k_fold_indices(17, 4, seed=0)
        combined = np.sort(np.concatenate(folds))
        np.testing.assert_array_equal(combined, np.arange(17))

    def test_group_split_holds_out_whole_group(self):
        _, dataset = make_dataset(8)
        train, val = group_split(dataset, "application", ["NN"])
        assert all(s.metadata["application"] == "MM" for s in train)
        assert all(s.metadata["application"] == "NN" for s in val)


class TestTrainer:
    def test_training_history_and_improvement(self):
        encoder, dataset = make_dataset(24, seed=1)
        train, val = train_val_split(dataset, 0.8, seed=0)
        model = ParaGraphModel(encoder.feature_dim, hidden_dim=8, head_dims=(8, 4), seed=0)
        trainer = Trainer(model, TrainingConfig(epochs=12, batch_size=8,
                                                learning_rate=5e-3, seed=0))
        history = trainer.fit(train, val)
        assert len(history) == 12
        assert history.val_rmses[-1] <= history.val_rmses[0] * 1.5
        assert np.isfinite(history.best_val_rmse)

    def test_predict_before_fit_raises(self):
        encoder, dataset = make_dataset(4)
        model = ParaGraphModel(encoder.feature_dim, hidden_dim=8)
        with pytest.raises(RuntimeError):
            Trainer(model).predict(dataset)

    def test_predictions_in_original_units(self):
        encoder, dataset = make_dataset(20, seed=2)
        train, val = train_val_split(dataset, 0.8, seed=0)
        model = ParaGraphModel(encoder.feature_dim, hidden_dim=8, seed=0)
        trainer = Trainer(model, TrainingConfig(epochs=8, batch_size=8, seed=0))
        trainer.fit(train, val)
        predictions = trainer.predict(val)
        assert predictions.shape == (len(val),)
        # microsecond-scale targets: predictions should be in a sane range
        assert np.all(predictions >= 0)
        assert predictions.max() < dataset.targets().max() * 100

    def test_empty_training_set_raises(self):
        encoder, _ = make_dataset(2)
        model = ParaGraphModel(encoder.feature_dim, hidden_dim=8)
        with pytest.raises(ValueError):
            Trainer(model).fit(GraphDataset([]))

    def test_early_stopping_truncates_history(self):
        encoder, dataset = make_dataset(16, seed=3)
        train, val = train_val_split(dataset, 0.8, seed=0)
        model = ParaGraphModel(encoder.feature_dim, hidden_dim=8, seed=0)
        trainer = Trainer(model, TrainingConfig(epochs=50, batch_size=8, seed=0,
                                                early_stopping_patience=2))
        history = trainer.fit(train, val)
        assert len(history) <= 50
