"""Additional tests for report formatting edge cases."""

from repro.evaluation import format_curves, format_series, format_table


class TestFormatTable:
    def test_missing_column_renders_blank(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=("a", "b"))
        assert "a" in text and "b" in text

    def test_float_format_applied(self):
        text = format_table([{"value": 0.123456789}], float_format="{:.2f}")
        assert "0.12" in text

    def test_column_subset_respected(self):
        text = format_table([{"a": 1, "b": 2, "c": 3}], columns=("a", "c"))
        assert "b" not in text.splitlines()[0]

    def test_wide_values_align(self):
        rows = [{"name": "x" * 30, "v": 1}, {"name": "y", "v": 12345}]
        lines = format_table(rows).splitlines()
        assert len(lines[0]) == len(lines[2])


class TestFormatSeriesAndCurves:
    def test_series_with_multiple_groups(self):
        text = format_series({"A": {"p": 1.0}, "B": {"q": 2.0}})
        assert "[A]" in text and "[B]" in text

    def test_curves_include_last_value(self):
        text = format_curves({"model": [0.9, 0.8, 0.7, 0.65]}, every=3)
        assert "0.6500" in text

    def test_curves_empty_series(self):
        assert format_curves({"model": []}) == "model: "
