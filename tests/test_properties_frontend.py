"""Frontend property suite: lexer/parser round trips over the synth corpus.

Each test sweeps one registered :mod:`repro.synth.harness` scenario across
its seeded cases; a failure names the seed and the ``python -m repro.synth``
command that replays it.  A few targeted corner cases that the generator
cannot reach (pathological pragmas, comments-only trivia) ride alongside.
"""

import pytest

from repro.clang import TokenKind, parse_source, tokenize
from repro.synth import canonical_render, run_cases, structural_dump


class TestCorpusSweeps:
    def test_lexer_roundtrip_corpus(self):
        report = run_cases("lexer-roundtrip")
        assert report.ok and report.cases >= 2

    def test_parser_roundtrip_corpus(self):
        report = run_cases("parser-roundtrip")
        assert report.ok and report.cases >= 2


class TestTargetedCorners:
    def test_pragma_survives_canonical_render(self):
        source = (
            "void f(int n) {\n"
            "  #pragma omp parallel for collapse(2) map(tofrom: a[0:n])\n"
            "  for (int i = 0; i < n; i++) { n += i; }\n"
            "}\n"
        )
        tokens = tokenize(source)
        pragmas = [t for t in tokens if t.kind is TokenKind.PRAGMA]
        assert [t.text for t in pragmas] == \
            ["omp parallel for collapse(2) map(tofrom: a[0:n])"]
        rendered = canonical_render(tokens)
        assert "#pragma omp parallel for collapse(2)" in rendered
        assert structural_dump(parse_source(rendered)) == \
            structural_dump(parse_source(source))

    def test_comments_and_line_continuations_are_trivia(self):
        commented = (
            "// leading comment\n"
            "void f(int n) { /* inline */ n = n + 1; // trailing\n"
            "}\n"
        )
        plain = "void f(int n) { n = n + 1; }"
        assert structural_dump(parse_source(commented)) == \
            structural_dump(parse_source(plain))
        continued = "#pragma omp parallel \\\n  for\nvoid g(void) { ; }\n"
        pragma = [t for t in tokenize(continued) if t.kind is TokenKind.PRAGMA][0]
        assert pragma.text.split() == ["omp", "parallel", "for"]

    def test_non_omp_pragma_is_skipped(self):
        source = "#pragma once\nvoid f(int n) { n = 1; }\n"
        ast = parse_source(source)
        assert "FunctionDecl" in structural_dump(ast)

    def test_canonical_render_is_whitespace_paranoid(self):
        # adjacent '+' tokens must never re-merge into '++'
        source = "void f(int n) { n = n + +1; }"
        tokens = tokenize(source)
        again = tokenize(canonical_render(tokens))
        texts = [t.text for t in again if t.kind is not TokenKind.EOF]
        assert texts.count("+") == 2 and "++" not in texts

    @pytest.mark.parametrize("bad", ["int x = \"unterminated;", "/* open"])
    def test_lex_errors_carry_location(self, bad):
        from repro.clang import LexError
        with pytest.raises(LexError, match="line"):
            tokenize(bad)
