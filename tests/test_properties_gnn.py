"""GNN property suite: differential parity over random graph shapes.

Sweeps the vectorized-vs-``forward_reference`` parity scenarios (forward,
fused ``no_grad`` kernel and gradients), the float32-serving bound and the
pooling-path scenarios from :mod:`repro.synth.harness`, and adds the
edge-layout LRU coverage the PR-2 cache still lacked: eviction *order*,
recency updates on hit, and content addressing across array layouts.
"""

import numpy as np
import pytest

from repro.gnn import EdgeLayoutCache, get_edge_layout
from repro.gnn.pooling import global_mean_max_pool, global_mean_pool
from repro.nn import Tensor
from repro.synth import random_encoded_graph, run_cases


class TestCorpusSweeps:
    def test_gnn_forward_parity_corpus(self):
        report = run_cases("gnn-forward-parity")
        assert report.ok and report.cases >= 2

    def test_gnn_gradient_parity_corpus(self):
        report = run_cases("gnn-gradient-parity")
        assert report.ok and report.cases >= 2

    def test_float32_serving_bounds_corpus(self):
        report = run_cases("float32-serving-bounds")
        assert report.ok and report.cases >= 2

    def test_pooling_paths_corpus(self):
        report = run_cases("pooling-paths")
        assert report.ok and report.cases >= 2


class TestEdgeLayoutLRU:
    """LRU semantics of the content-addressed layout cache (satellite #3)."""

    @staticmethod
    def _graph(seed):
        encoded = random_encoded_graph(seed)
        return encoded.edge_index, encoded.edge_type, encoded.num_nodes

    def test_eviction_follows_recency_not_insertion(self):
        cache = EdgeLayoutCache(capacity=2)
        ei_a, et_a, n_a = self._graph(1)
        ei_b, et_b, n_b = self._graph(2)
        ei_c, et_c, n_c = self._graph(3)
        layout_a = cache.get(ei_a, et_a, n_a, 8)
        cache.get(ei_b, et_b, n_b, 8)
        # touch A so B becomes the least recently used entry
        assert cache.get(ei_a, et_a, n_a, 8) is layout_a
        cache.get(ei_c, et_c, n_c, 8)                 # evicts B, not A
        misses = cache.info().misses
        assert cache.get(ei_a, et_a, n_a, 8) is layout_a
        assert cache.info().misses == misses          # A survived
        cache.get(ei_b, et_b, n_b, 8)
        assert cache.info().misses == misses + 1      # B was evicted

    def test_content_addressing_ignores_array_layout(self):
        cache = EdgeLayoutCache(capacity=4)
        ei = np.array([[0, 1, 2], [1, 2, 0]], dtype=np.int64)
        et = np.array([0, 1, 0], dtype=np.int64)
        first = cache.get(ei, et, 3, 2)
        # Fortran-ordered / sliced views with equal content must hit
        strided = np.asfortranarray(ei)
        padded = np.zeros((2, 6), dtype=np.int64)
        padded[:, ::2] = ei
        assert cache.get(strided, et, 3, 2) is first
        assert cache.get(padded[:, ::2], et.copy(), 3, 2) is first
        assert cache.info().hits == 2

    def test_distinct_content_misses(self):
        cache = EdgeLayoutCache(capacity=4)
        ei = np.array([[0, 1], [1, 0]], dtype=np.int64)
        cache.get(ei, np.array([0, 1]), 2, 2)
        cache.get(ei, np.array([1, 0]), 2, 2)         # types differ
        cache.get(ei, None, 2, 2)                     # None types differ again
        # hits, misses, size, capacity, evictions
        assert cache.info() == (0, 3, 3, 4, 0)

    def test_zero_capacity_never_stores(self):
        cache = EdgeLayoutCache(capacity=0)
        ei = np.array([[0], [0]], dtype=np.int64)
        cache.get(ei, None, 1, 1)
        cache.get(ei, None, 1, 1)
        assert cache.info().size == 0
        assert cache.info().misses == 2

    def test_layout_arrays_are_frozen(self):
        encoded = random_encoded_graph(5)
        layout = get_edge_layout(encoded.edge_index, encoded.edge_type,
                                 encoded.num_nodes, 8)
        with pytest.raises(ValueError):
            layout.src[0] = 0


class TestSortedPoolingShortcut:
    """reduceat shortcut vs the scatter fallback (satellite #3)."""

    def test_sorted_and_gradient_paths_agree_on_values(self):
        rng = np.random.default_rng(0)
        batch = np.repeat(np.arange(3), [4, 1, 5])
        data = rng.normal(size=(10, 6))
        fast = global_mean_pool(Tensor(data), batch, 3)
        slow = global_mean_pool(Tensor(data.copy(), requires_grad=True), batch, 3)
        np.testing.assert_allclose(fast.data, slow.data, atol=1e-12)

    def test_mean_max_gradients_flow_through_fallback(self):
        rng = np.random.default_rng(1)
        batch = np.repeat(np.arange(2), [3, 2])
        x = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        global_mean_max_pool(x, batch, 2).sum().backward()
        assert x.grad is not None
        assert x.grad.shape == (5, 4)
        # gradient mass is 1 per (graph, feature) for the mean half and 1 for
        # the max half: 2 graphs x 4 features x 2 halves
        np.testing.assert_allclose(x.grad.sum(), 16.0)

    def test_empty_graph_in_batch_pools_to_fill(self):
        # graph id 1 has no nodes: reduceat shortcut must leave its row at 0
        batch = np.array([0, 0, 2, 2])
        data = np.ones((4, 3))
        pooled = global_mean_pool(Tensor(data), batch, 3)
        np.testing.assert_allclose(pooled.data[1], 0.0)
        np.testing.assert_allclose(pooled.data[[0, 2]], 1.0)
