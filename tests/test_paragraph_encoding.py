"""Tests for the node vocabulary, graph encoder and batching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clang import analyze, parse_snippet
from repro.paragraph import (
    DEFAULT_NODE_KINDS,
    GraphEncoder,
    UNK_TOKEN,
    Vocabulary,
    build_paragraph,
    default_vocabulary,
)
from repro.paragraph.weights import WeightConfig, compute_execution_counts


def toy_graph(source="for (int i = 0; i < 8; i++) { a[i] = i; }"):
    return build_paragraph(analyze(parse_snippet(source)))


class TestVocabulary:
    def test_default_contains_all_ast_kinds(self):
        vocab = default_vocabulary()
        for kind in DEFAULT_NODE_KINDS:
            assert kind in vocab

    def test_unk_token_present(self):
        assert UNK_TOKEN in default_vocabulary()

    def test_unknown_label_maps_to_unk(self):
        vocab = default_vocabulary()
        assert vocab.index("NotARealKind") == vocab.index(UNK_TOKEN)

    def test_index_label_round_trip(self):
        vocab = default_vocabulary()
        for label in ("ForStmt", "IfStmt", "DeclRefExpr"):
            assert vocab.label(vocab.index(label)) == label

    def test_encode_shape_and_dtype(self):
        vocab = default_vocabulary()
        encoded = vocab.encode(["ForStmt", "IfStmt"])
        assert encoded.shape == (2,) and encoded.dtype == np.int64

    def test_one_hot_rows_sum_to_one(self):
        vocab = default_vocabulary()
        one_hot = vocab.one_hot(["ForStmt", "WhileStmt", "Bogus"])
        assert one_hot.shape == (3, vocab.size)
        assert np.allclose(one_hot.sum(axis=1), 1.0)

    def test_fit_from_corpus(self):
        vocab = Vocabulary.fit([["A", "B"], ["B", "C"]])
        assert {"A", "B", "C"}.issubset(set(vocab.labels()))
        assert UNK_TOKEN in vocab

    @given(st.lists(st.sampled_from(DEFAULT_NODE_KINDS), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_one_hot_argmax_recovers_indices(self, labels):
        vocab = default_vocabulary()
        one_hot = vocab.one_hot(labels)
        assert np.array_equal(one_hot.argmax(axis=1), vocab.encode(labels))


class TestGraphEncoder:
    def test_feature_dim_includes_terminal_flag(self):
        encoder = GraphEncoder(include_terminal_flag=True)
        assert encoder.feature_dim == default_vocabulary().size + 1

    def test_feature_dim_without_terminal_flag(self):
        encoder = GraphEncoder(include_terminal_flag=False)
        assert encoder.feature_dim == default_vocabulary().size

    def test_encoded_shapes_consistent(self):
        graph = toy_graph()
        encoded = GraphEncoder().encode(graph, num_teams=2, num_threads=8, target=123.0)
        assert encoded.node_features.shape == (graph.num_nodes, GraphEncoder().feature_dim)
        assert encoded.edge_index.shape == (2, graph.num_edges)
        assert encoded.edge_type.shape == (graph.num_edges,)
        assert encoded.edge_weight.shape == (graph.num_edges,)
        assert encoded.aux_features.tolist() == [2.0, 8.0]
        assert encoded.target == 123.0

    def test_log_scaling_of_weights(self):
        graph = toy_graph()
        scaled = GraphEncoder(log_scale_weights=True).encode(graph)
        raw = GraphEncoder(log_scale_weights=False).encode(graph)
        assert scaled.edge_weight.max() <= raw.edge_weight.max()
        assert np.allclose(scaled.edge_weight, np.log1p(raw.edge_weight))

    def test_metadata_stored(self):
        encoded = GraphEncoder().encode(toy_graph(), metadata={"application": "MM"})
        assert encoded.metadata["application"] == "MM"

    def test_collate_offsets_edge_indices(self):
        encoder = GraphEncoder()
        first = encoder.encode(toy_graph())
        second = encoder.encode(toy_graph())
        batch = GraphEncoder.collate([first, second])
        assert batch.num_graphs == 2
        assert batch.node_features.shape[0] == first.num_nodes + second.num_nodes
        # second graph's edges must reference offset node ids
        assert batch.edge_index[:, first.num_edges:].min() >= first.num_nodes

    def test_collate_batch_vector(self):
        encoder = GraphEncoder()
        batch = GraphEncoder.collate([encoder.encode(toy_graph()),
                                      encoder.encode(toy_graph("x = 1;"))])
        assert set(batch.batch.tolist()) == {0, 1}
        assert batch.batch.shape[0] == batch.node_features.shape[0]

    def test_collate_targets_and_aux(self):
        encoder = GraphEncoder()
        a = encoder.encode(toy_graph(), num_teams=1, num_threads=2, target=10.0)
        b = encoder.encode(toy_graph(), num_teams=3, num_threads=4, target=20.0)
        batch = GraphEncoder.collate([a, b])
        assert batch.targets.tolist() == [10.0, 20.0]
        assert batch.aux_features.shape == (2, 2)

    def test_collate_empty_raises(self):
        with pytest.raises(ValueError):
            GraphEncoder.collate([])

    @given(st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_collate_preserves_total_edge_count(self, copies):
        encoder = GraphEncoder()
        encoded = encoder.encode(toy_graph())
        batch = GraphEncoder.collate([encoded] * copies)
        assert batch.edge_index.shape[1] == encoded.num_edges * copies


class TestExecutionCounts:
    def test_root_count_is_one(self):
        ast = analyze(parse_snippet("x = 1;"))
        counts = compute_execution_counts(ast)
        assert counts[id(ast)] == pytest.approx(1.0)

    def test_every_node_has_a_count(self):
        ast = analyze(parse_snippet("for (int i = 0; i < 3; i++) { if (i) { x = i; } }"))
        counts = compute_execution_counts(ast)
        for node in ast.walk():
            assert id(node) in counts
            assert counts[id(node)] > 0

    def test_while_loop_uses_default_trip_count(self):
        ast = analyze(parse_snippet("while (running) { x += 1; }"))
        counts = compute_execution_counts(ast, WeightConfig(default_trip_count=12))
        body = ast.find_all("WhileStmt")[0].body
        assert counts[id(body)] == pytest.approx(12.0)

    def test_collapse_divides_across_nest_once(self):
        source = ("#pragma omp target teams distribute parallel for collapse(2)\n"
                  "for (int i = 0; i < 10; i++) { for (int j = 0; j < 10; j++) { x += j; } }")
        ast = analyze(parse_snippet(source))
        config = WeightConfig(num_threads=5, num_teams=2, env=None or __import__(
            "repro.clang.semantics", fromlist=["ConstantEnvironment"]).ConstantEnvironment())
        counts = compute_execution_counts(ast, config)
        inner_body = ast.find_all("ForStmt")[1].body
        # total 100 iterations divided by 10-way parallelism = 10
        assert counts[id(inner_body)] == pytest.approx(10.0)
