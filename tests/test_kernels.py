"""Tests for the benchmark kernel registry (Table I) and kernel metadata."""

import pytest

from repro.clang import analyze
from repro.clang.ast_nodes import FunctionDecl
from repro.clang.traversal import iter_for_loops
from repro.kernels import (
    APPLICATIONS,
    ArraySpec,
    KernelDefinition,
    all_applications,
    all_kernels,
    get_application,
    get_kernel,
    table1_rows,
)


class TestTable1Structure:
    def test_nine_applications(self):
        assert len(all_applications()) == 9

    def test_seventeen_kernels(self):
        assert len(all_kernels()) == 17

    def test_table1_kernel_counts_match_paper(self):
        counts = {row["application"]: row["num_kernels"] for row in table1_rows()}
        assert counts == {
            "Correlation": 1, "Covariance": 2, "Gauss": 1, "NN": 1,
            "Laplace": 2, "MM": 1, "MV": 1, "Transpose": 1, "ParticleFilter": 7,
        }

    def test_domains_match_paper(self):
        domains = {row["application"]: row["domain"] for row in table1_rows()}
        assert domains["Correlation"] == "Statistics"
        assert domains["Covariance"] == "Probability Theory"
        assert domains["NN"] == "Data Mining"
        assert domains["Laplace"] == "Numerical Analysis"
        assert domains["ParticleFilter"] == "Medical Imaging"

    def test_unique_full_names(self):
        names = [k.full_name for k in all_kernels()]
        assert len(names) == len(set(names))


class TestKernelDefinitions:
    @pytest.mark.parametrize("kernel", all_kernels(), ids=lambda k: k.full_name)
    def test_source_parses_into_function(self, kernel):
        function = kernel.function()
        assert isinstance(function, FunctionDecl)
        assert function.body is not None

    @pytest.mark.parametrize("kernel", all_kernels(), ids=lambda k: k.full_name)
    def test_kernel_has_at_least_one_loop(self, kernel):
        function = kernel.function()
        assert list(iter_for_loops(function))

    @pytest.mark.parametrize("kernel", all_kernels(), ids=lambda k: k.full_name)
    def test_default_sizes_cover_parameters(self, kernel):
        sizes = kernel.sizes_with_defaults()
        for parameter in kernel.size_parameters:
            assert parameter in sizes and sizes[parameter] > 0

    @pytest.mark.parametrize("kernel", all_kernels(), ids=lambda k: k.full_name)
    def test_array_sizes_evaluate(self, kernel):
        sizes = kernel.sizes_with_defaults()
        for array in kernel.arrays:
            assert array.num_elements(sizes) > 0
            assert array.num_bytes(sizes) == array.num_elements(sizes) * array.element_size

    @pytest.mark.parametrize("kernel", all_kernels(), ids=lambda k: k.full_name)
    def test_collapsible_depth_is_legal(self, kernel):
        from repro.clang.traversal import perfectly_nested_for_loops

        function = analyze(kernel.function())
        outer = next(iter_for_loops(function))
        assert kernel.collapsible_loops <= max(len(perfectly_nested_for_loops(outer)), 1)

    def test_transfer_bytes_scale_with_sizes(self):
        kernel = get_kernel("matmul")
        small = kernel.transfer_bytes({"N": 64, "M": 64, "K": 64})
        large = kernel.transfer_bytes({"N": 128, "M": 128, "K": 128})
        assert large == 4 * small

    def test_environment_binds_sizes(self):
        kernel = get_kernel("matvec")
        env = kernel.environment({"N": 100, "M": 10})
        assert env.get("N") == 100 and env.get("M") == 10

    def test_sizes_missing_parameter_raises(self):
        kernel = KernelDefinition(
            application="X", kernel_name="x", domain="d",
            source="void x(int N) { for (int i = 0; i < N; i++) {} }",
            size_parameters=("N",), arrays=(), default_sizes={})
        with pytest.raises(ValueError):
            kernel.sizes_with_defaults()

    def test_invalid_array_size_expression_raises(self):
        spec = ArraySpec("a", 8, "N*UNKNOWN")
        with pytest.raises(ValueError):
            spec.num_elements({"N": 4})


class TestRegistryLookup:
    def test_get_application_case_insensitive(self):
        assert get_application("particlefilter").name == "ParticleFilter"

    def test_get_application_unknown_raises(self):
        with pytest.raises(KeyError):
            get_application("does-not-exist")

    def test_get_kernel_by_name(self):
        assert get_kernel("matmul").application == "MM"

    def test_get_kernel_by_full_name(self):
        assert get_kernel("Covariance/covariance_mean").kernel_name == "covariance_mean"

    def test_get_kernel_unknown_raises(self):
        with pytest.raises(KeyError):
            get_kernel("nonexistent_kernel")

    def test_applications_tuple_matches_function(self):
        assert list(APPLICATIONS) == all_applications()
