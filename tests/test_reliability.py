"""Tests for ``repro.reliability`` and its integration into serve + store.

Covers the four reliability primitives in isolation (typed errors +
transient classification, retry policy/budget, circuit breaker, seeded
fault injection) and then the behaviours they give the serving runtime:
deadlines honoured at dequeue and execution time, transparent transient
retries that stay bit-identical, fail-fast deterministic errors, load
shedding, breaker trips, and the ``stats()``/``healthz()`` observability
surface.  Store fault hooks are exercised through the checksum path: an
injected write or read corruption must always surface as
``CorruptArtifactError``, never as silently wrong weights.
"""

import threading
import time

import numpy as np
import pytest

from repro.clang.lexer import Token, TokenKind
from repro.clang.parser import ParseError
from repro.reliability import (
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceeded,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    ReliabilityError,
    RetryBudget,
    RetryPolicy,
    ServerClosedError,
    ServerOverloaded,
    TransientFaultError,
    call_with_retry,
    fault_kind_registry,
    fault_point,
    inject_faults,
    is_transient,
)
from repro.reliability.faults import (
    SITE_FORWARD,
    SITE_STORE_READ,
    SITE_STORE_WRITE,
    SITE_WORKER,
    SITES,
)
from repro.serve import Server, ServerConfig
from repro.synth.harness import _tiny_serving_stack


def _parse_error(message: str = "syntax error") -> ParseError:
    """A deterministic user-content error (needs a token for its location)."""
    return ParseError(message, Token(TokenKind.PUNCTUATOR, "{", 1, 1))


@pytest.fixture(scope="module")
def warm_stack():
    """A serving-ready session without training (shared, read-only)."""
    session, platform, sources = _tiny_serving_stack(917)
    yield session, platform, sources
    session.close()


# --------------------------------------------------------------------- #
# errors & transient classification
# --------------------------------------------------------------------- #
class TestErrorTaxonomy:
    def test_hierarchy_keeps_runtimeerror_compat(self):
        for exc in (DeadlineExceeded, ServerOverloaded, ServerClosedError,
                    CircuitOpenError, TransientFaultError):
            assert issubclass(exc, ReliabilityError)
            assert issubclass(exc, RuntimeError)
        # deadline errors also read as timeouts for generic handlers
        assert issubclass(DeadlineExceeded, TimeoutError)

    def test_transient_classification(self):
        assert is_transient(TransientFaultError("x"))
        assert is_transient(ConnectionError("x"))
        assert is_transient(OSError("disk hiccup"))
        # reliability verdicts are final: retrying them cannot help
        assert not is_transient(DeadlineExceeded("x"))
        assert not is_transient(ServerOverloaded("x"))
        assert not is_transient(CircuitOpenError("x"))
        # deterministic user/content errors fail fast
        assert not is_transient(_parse_error("bad source"))
        assert not is_transient(ValueError("bad argument"))
        assert not is_transient(FileNotFoundError("gone"))
        assert not is_transient(PermissionError("denied"))

    def test_transient_attribute_opt_in(self):
        error = ValueError("custom")
        error.transient = True
        assert is_transient(error)


# --------------------------------------------------------------------- #
# retry policy / budget / loop
# --------------------------------------------------------------------- #
class TestRetry:
    def test_backoff_is_exponential_capped_and_jittered(self):
        policy = RetryPolicy(max_retries=5, backoff_s=0.01,
                             backoff_cap_s=0.04, jitter=0.0)
        assert policy.backoff_for(0) == pytest.approx(0.01)
        assert policy.backoff_for(1) == pytest.approx(0.02)
        assert policy.backoff_for(4) == pytest.approx(0.04)  # capped
        jittered = RetryPolicy(backoff_s=0.01, jitter=0.5)
        draws = {jittered.backoff_for(0) for _ in range(32)}
        assert all(0.005 <= d <= 0.01 for d in draws)
        assert len(draws) > 1, "jitter must decorrelate sleeps"

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_transient_failures_retry_then_succeed(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientFaultError("blip")
            return "ok"

        result = call_with_retry(flaky,
                                 policy=RetryPolicy(max_retries=3,
                                                    backoff_s=0.0),
                                 sleep=lambda _: None)
        assert result == "ok"
        assert len(calls) == 3

    def test_deterministic_failures_fail_fast(self):
        calls = []

        def broken():
            calls.append(1)
            raise _parse_error()

        with pytest.raises(ParseError):
            call_with_retry(broken, policy=RetryPolicy(max_retries=5,
                                                       backoff_s=0.0),
                            sleep=lambda _: None)
        assert len(calls) == 1

    def test_exhausted_attempts_reraise_the_original(self):
        def always():
            raise TransientFaultError("persistent")

        with pytest.raises(TransientFaultError, match="persistent"):
            call_with_retry(always, policy=RetryPolicy(max_retries=2,
                                                       backoff_s=0.0),
                            sleep=lambda _: None)

    def test_budget_exhaustion_turns_retries_off(self):
        budget = RetryBudget(capacity=1.0, refill_per_success=0.5)
        calls = []

        def always():
            calls.append(1)
            raise TransientFaultError("blip")

        with pytest.raises(TransientFaultError):
            call_with_retry(always, policy=RetryPolicy(max_retries=5,
                                                       backoff_s=0.0),
                            budget=budget, sleep=lambda _: None)
        assert len(calls) == 2          # one try + the single budgeted retry
        assert budget.tokens == 0.0

    def test_success_refills_the_budget(self):
        budget = RetryBudget(capacity=4.0, refill_per_success=0.5)
        assert budget.take()
        call_with_retry(lambda: "ok", policy=RetryPolicy(), budget=budget)
        assert budget.tokens == pytest.approx(3.5)

    def test_deadline_beats_backoff_and_chains_the_cause(self):
        deadline = time.monotonic() + 0.001

        def always():
            raise TransientFaultError("blip")

        with pytest.raises(DeadlineExceeded) as info:
            call_with_retry(always,
                            policy=RetryPolicy(max_retries=5, backoff_s=10.0),
                            deadline=deadline, sleep=lambda _: None)
        assert isinstance(info.value.__cause__, TransientFaultError)

    def test_on_retry_observes_every_retry(self):
        seen = []
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientFaultError("blip")
            return 1

        call_with_retry(flaky, policy=RetryPolicy(max_retries=3,
                                                  backoff_s=0.0),
                        on_retry=lambda e, n: seen.append(n),
                        sleep=lambda _: None)
        assert seen == [0, 1]


# --------------------------------------------------------------------- #
# circuit breaker
# --------------------------------------------------------------------- #
class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_trips_after_threshold_and_recovers(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_s=5.0,
                                 clock=clock)
        assert breaker.state == "closed"
        for _ in range(2):
            breaker.record_failure()
        assert breaker.allow(), "below threshold must still admit"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.now += 5.0
        assert breaker.state == "half-open"
        assert breaker.allow(), "half-open admits one trial"
        assert not breaker.allow(), "only one trial at a time"
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_trial_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_s=2.0, clock=clock)
        breaker.record_failure()
        clock.now += 2.0
        assert breaker.allow()
        breaker.record_failure()        # the trial failed
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_s=1.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_lost_trial_is_written_off(self):
        # a trial that never reports (shed, dropped on deadline) must not
        # wedge the breaker half-open forever
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_s=1.0, clock=clock)
        breaker.record_failure()
        clock.now += 1.0
        assert breaker.allow()          # trial admitted, then lost
        assert not breaker.allow()
        clock.now += 1.0
        assert breaker.allow(), "lost trial written off after reset_s"

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_s=-1.0)


# --------------------------------------------------------------------- #
# fault injection
# --------------------------------------------------------------------- #
class TestFaultInjection:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec("nowhere", "raise", 0.5)
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(SITE_FORWARD, "explode", 0.5)
        with pytest.raises(ValueError, match="not allowed at site"):
            FaultSpec(SITE_FORWARD, "corrupt-payload", 0.5)
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(SITE_FORWARD, "raise", 1.5)
        with pytest.raises(ValueError, match="max_fires"):
            FaultSpec(SITE_FORWARD, "raise", 0.5, max_fires=0)

    def test_corrupt_payload_only_where_checksums_catch_it(self):
        for site, kinds in SITES.items():
            if "corrupt-payload" in kinds:
                assert site in (SITE_STORE_READ, SITE_STORE_WRITE), \
                    f"{site}: corruption without a downstream integrity check"

    def test_registry_is_extensible(self):
        assert set(fault_kind_registry.keys()) >= \
            {"raise", "delay", "corrupt-payload"}

    def test_no_injector_is_a_passthrough(self):
        payload = object()
        assert fault_point(SITE_FORWARD, payload) is payload
        assert fault_point(SITE_FORWARD) is None

    def test_decisions_replay_by_seed(self):
        plan = FaultPlan(1234, [FaultSpec(SITE_WORKER, "raise", 0.5)])

        def pattern():
            injector = FaultInjector(plan)
            fired = []
            for _ in range(64):
                try:
                    injector.apply(SITE_WORKER, None)
                    fired.append(False)
                except TransientFaultError:
                    fired.append(True)
            return fired

        first = pattern()
        assert first == pattern(), "same seed must replay the same decisions"
        assert any(first) and not all(first)
        other = FaultInjector(FaultPlan(4321, plan.specs))
        different = []
        for _ in range(64):
            try:
                other.apply(SITE_WORKER, None)
                different.append(False)
            except TransientFaultError:
                different.append(True)
        assert different != first, "different seeds must differ"

    def test_max_fires_caps_the_fault(self):
        plan = FaultPlan(7, [FaultSpec(SITE_WORKER, "raise", 1.0, max_fires=2)])
        injector = FaultInjector(plan)
        for _ in range(2):
            with pytest.raises(TransientFaultError):
                injector.apply(SITE_WORKER, None)
        injector.apply(SITE_WORKER, None)       # healed
        assert injector.fired(SITE_WORKER) == 2
        assert injector.fire_counts() == {(SITE_WORKER, "raise"): 2}

    def test_corrupt_payload_bytes_and_arrays(self):
        plan = FaultPlan(3, [FaultSpec(SITE_STORE_READ, "corrupt-payload", 1.0)])
        injector = FaultInjector(plan)
        original = b"payload-bytes"
        corrupted = injector.apply(SITE_STORE_READ, original)
        assert corrupted != original and len(corrupted) == len(original)
        array = np.arange(6, dtype=np.float64).reshape(2, 3)
        kept = array.copy()
        mangled = injector.apply(SITE_STORE_READ, array)
        np.testing.assert_array_equal(array, kept), "input must not mutate"
        assert not np.array_equal(mangled, kept, equal_nan=True)

    def test_scopes_do_not_nest(self):
        plan = FaultPlan(1, [])
        with inject_faults(plan):
            with pytest.raises(RuntimeError, match="do not nest"):
                with inject_faults(plan):
                    pass
        # and the scope always deactivates on exit
        assert fault_point(SITE_WORKER, "x") == "x"

    def test_delay_fault_sleeps(self):
        plan = FaultPlan(9, [FaultSpec(SITE_WORKER, "delay", 1.0,
                                       delay_s=0.05)])
        injector = FaultInjector(plan)
        start = time.monotonic()
        injector.apply(SITE_WORKER, None)
        assert time.monotonic() - start >= 0.04


# --------------------------------------------------------------------- #
# serving runtime integration
# --------------------------------------------------------------------- #
class TestServerDeadlines:
    def test_inline_expired_deadline_is_typed(self, warm_stack):
        session, platform, sources = warm_stack
        server = Server(session, ServerConfig(num_workers=0))
        future = server.submit(sources[0], platform, deadline_s=0.0)
        with pytest.raises(DeadlineExceeded):
            future.result(timeout=1.0)
        with pytest.raises(DeadlineExceeded):
            server.predict_batch(sources, platform, deadline_s=0.0)
        assert server.stats().deadline_expired >= 1 + len(sources)

    def test_queued_expiry_is_dropped_at_dequeue(self, warm_stack):
        session, platform, sources = warm_stack
        with Server(session, ServerConfig(num_workers=1,
                                          batch_window_s=0.0)) as server:
            future = server.submit(sources[0], platform, deadline_s=0.0)
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=5.0)
            assert server.stats().deadline_expired >= 1

    def test_default_deadline_applies(self, warm_stack):
        session, platform, sources = warm_stack
        server = Server(session, ServerConfig(num_workers=0,
                                              default_deadline_s=0.0))
        with pytest.raises(DeadlineExceeded):
            server.predict(sources[0], platform)

    def test_generous_deadline_serves_bit_identically(self, warm_stack):
        session, platform, sources = warm_stack
        server = Server(session, ServerConfig(num_workers=0))
        reference = server.predict_batch(sources, platform, dtype=None)
        with Server(session, ServerConfig(num_workers=2)) as pooled:
            result = pooled.predict_batch(sources, platform, dtype=None,
                                          deadline_s=30.0)
        np.testing.assert_array_equal(result, reference)

    def test_negative_deadline_is_rejected(self, warm_stack):
        session, platform, sources = warm_stack
        server = Server(session, ServerConfig(num_workers=0))
        with pytest.raises(ValueError, match="deadline_s"):
            server.predict(sources[0], platform, deadline_s=-1.0)


class TestServerShedding:
    def test_overload_sheds_with_typed_error(self, warm_stack):
        session, platform, sources = warm_stack
        plan = FaultPlan(5, [FaultSpec(SITE_WORKER, "delay", 1.0,
                                       delay_s=0.2)])
        config = ServerConfig(num_workers=1, max_batch_size=1,
                              batch_window_s=0.0, max_queue_depth=1)
        shed = 0
        with inject_faults(plan):
            with Server(session, config) as server:
                futures = []
                for _ in range(6):
                    try:
                        futures.append(server.submit(sources[0], platform))
                    except ServerOverloaded:
                        shed += 1
                for future in futures:
                    future.result(timeout=30.0)
                assert shed > 0, "a 1-deep queue under a wedged worker " \
                                 "must shed"
                stats = server.stats()
                assert stats.shed == shed
                assert server.healthz()["shed"] == shed


class TestServerRetries:
    def test_transient_forward_fault_is_retried_bit_identically(
            self, warm_stack):
        session, platform, sources = warm_stack
        clean = Server(session, ServerConfig(num_workers=0))
        reference = clean.predict_batch(sources[:1], platform, dtype=None)
        plan = FaultPlan(11, [FaultSpec(SITE_FORWARD, "raise", 1.0,
                                        max_fires=2)])
        config = ServerConfig(num_workers=0, max_retries=3,
                              retry_backoff_s=0.0)
        with inject_faults(plan) as injector:
            server = Server(session, config)
            result = server.predict_batch(sources[:1], platform, dtype=None)
        np.testing.assert_array_equal(result, reference)
        assert injector.fired(SITE_FORWARD) == 2
        stats = server.stats()
        assert stats.retries == 2
        assert stats.failures == 0

    def test_exhausted_retries_surface_the_fault(self, warm_stack):
        session, platform, sources = warm_stack
        plan = FaultPlan(13, [FaultSpec(SITE_FORWARD, "raise", 1.0)])
        config = ServerConfig(num_workers=0, max_retries=1,
                              retry_backoff_s=0.0, breaker_threshold=0)
        with inject_faults(plan):
            server = Server(session, config)
            with pytest.raises(TransientFaultError):
                server.predict(sources[0], platform)
        stats = server.stats()
        assert stats.retries == 1
        assert stats.failures == 1

    def test_deterministic_errors_are_not_retried(self, warm_stack):
        session, platform, _ = warm_stack
        server = Server(session, ServerConfig(num_workers=0, max_retries=3))
        with pytest.raises(ParseError):
            server.predict("void broken( {", platform)
        stats = server.stats()
        assert stats.retries == 0
        assert stats.failures == 1

    def test_retry_budget_bounds_amplification(self, warm_stack):
        session, platform, sources = warm_stack
        plan = FaultPlan(17, [FaultSpec(SITE_FORWARD, "raise", 1.0)])
        config = ServerConfig(num_workers=0, max_retries=5,
                              retry_backoff_s=0.0, retry_budget=2.0,
                              breaker_threshold=0)
        with inject_faults(plan):
            server = Server(session, config)
            with pytest.raises(TransientFaultError):
                server.predict(sources[0], platform)
            with pytest.raises(TransientFaultError):
                server.predict(sources[0], platform)
        assert server.stats().retries == 2, \
            "a drained budget must stop retry amplification"


class TestServerBreaker:
    def test_breaker_opens_then_recovers(self, warm_stack):
        session, platform, sources = warm_stack
        plan = FaultPlan(19, [FaultSpec(SITE_FORWARD, "raise", 1.0,
                                        max_fires=2)])
        config = ServerConfig(num_workers=0, max_retries=0,
                              breaker_threshold=2, breaker_reset_s=0.05)
        with inject_faults(plan):
            server = Server(session, config)
            for _ in range(2):
                with pytest.raises(TransientFaultError):
                    server.predict(sources[0], platform)
            health = server.healthz()
            assert health["status"] == "degraded"
            assert "open" in health["breakers"].values()
            with pytest.raises(CircuitOpenError):
                server.predict(sources[0], platform)
            assert server.stats().breaker_rejections == 1
            assert server.stats().breakers_open == 1
            time.sleep(0.06)            # half-open: the faults healed
            value = server.predict(sources[0], platform)
            assert np.isfinite(value)
        assert server.healthz()["status"] == "ok"
        assert server.stats().breakers_open == 0

    def test_deadline_failures_do_not_trip_the_breaker(self, warm_stack):
        session, platform, sources = warm_stack
        server = Server(session, ServerConfig(num_workers=0,
                                              breaker_threshold=1))
        with pytest.raises(DeadlineExceeded):
            server.predict(sources[0], platform, deadline_s=0.0)
        assert server.stats().breakers_open == 0
        assert np.isfinite(server.predict(sources[0], platform))


class TestObservability:
    def test_stats_and_healthz_expose_reliability_counters(self, warm_stack):
        session, platform, sources = warm_stack
        server = Server(session, ServerConfig(num_workers=0))
        server.predict(sources[0], platform)
        stats = server.stats()
        for field in ("shed", "deadline_expired", "failures", "retries",
                      "breaker_rejections", "breakers_open", "queue_depth"):
            assert getattr(stats, field) == 0
        health = server.healthz()
        assert health["status"] == "ok"
        assert health["requests_executed"] >= 1
        assert health["error_rate"] == 0.0
        assert health["retry_budget_tokens"] == server.config.retry_budget
        assert health["warm_started"] is True

    def test_healthz_with_mixed_dtype_shards(self, warm_stack):
        # float64 shards have dtype=None in their ShardKey: healthz must
        # still render per-shard breaker states without a sort TypeError
        session, platform, sources = warm_stack
        server = Server(session, ServerConfig(num_workers=0))
        server.predict(sources[0], platform, dtype=None)
        server.predict(sources[0], platform, dtype=np.float32)
        health = server.healthz()
        assert len(health["breakers"]) == 2
        assert all(state == "closed" for state in health["breakers"].values())

    def test_healthz_reports_closed(self, warm_stack):
        session, platform, _ = warm_stack
        server = Server(session, ServerConfig(num_workers=1))
        server.close()
        assert server.healthz()["status"] == "closed"


# --------------------------------------------------------------------- #
# store fault hooks
# --------------------------------------------------------------------- #
class TestStoreFaultHooks:
    @pytest.fixture()
    def tiny_artifact_inputs(self):
        from repro.synth.harness import _tiny_serving_stack

        session, platform, _ = _tiny_serving_stack(23)
        trainer = session.trainer_for(platform)
        yield session, platform, trainer
        session.close()

    def test_write_corruption_is_caught_by_verify(self, tiny_artifact_inputs,
                                                  tmp_path):
        from repro.store import save_trainers, verify_artifact

        session, platform, trainer = tiny_artifact_inputs
        plan = FaultPlan(29, [FaultSpec(SITE_STORE_WRITE, "corrupt-payload",
                                        1.0)])
        path = str(tmp_path / "corrupt-write")
        with inject_faults(plan) as injector:
            save_trainers(path, {platform: trainer}, config=session.config,
                          encoder=session.encoder)
        assert injector.fired(SITE_STORE_WRITE) == 1
        report = verify_artifact(path)
        assert not report.ok
        assert any("checksum" in problem for problem in report.problems)

    def test_read_corruption_is_caught_by_load(self, tiny_artifact_inputs,
                                               tmp_path):
        from repro.store import CorruptArtifactError, load_trainers, \
            save_trainers, verify_artifact

        session, platform, trainer = tiny_artifact_inputs
        path = str(tmp_path / "corrupt-read")
        save_trainers(path, {platform: trainer}, config=session.config,
                      encoder=session.encoder)
        assert verify_artifact(path).ok
        plan = FaultPlan(31, [FaultSpec(SITE_STORE_READ, "corrupt-payload",
                                        1.0)])
        with inject_faults(plan):
            with pytest.raises(CorruptArtifactError, match="checksum"):
                load_trainers(path)

    def test_transient_read_fault_is_typed(self, tiny_artifact_inputs,
                                           tmp_path):
        from repro.store import load_trainers, save_trainers

        session, platform, trainer = tiny_artifact_inputs
        path = str(tmp_path / "flaky-read")
        save_trainers(path, {platform: trainer}, config=session.config,
                      encoder=session.encoder)
        plan = FaultPlan(37, [FaultSpec(SITE_STORE_READ, "raise", 1.0,
                                        max_fires=1)])
        with inject_faults(plan):
            with pytest.raises(TransientFaultError):
                load_trainers(path)
            # the fault healed; the artifact itself was never damaged
            assert load_trainers(path).trainers
