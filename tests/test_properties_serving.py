"""Serving property suite: the full pipeline under synthetic traffic.

Drives a (tiny) trained :class:`repro.api.Session` with the generated
kernel corpus and asserts the serving-path equivalences: cold vs warm
``predict_batch``, batch vs single ``predict``, float32 vs float64 dtype
selection, and cache accounting.  Also sweeps the ``config-roundtrip``
scenario and pins down the ``run_workflow`` deprecation shim and
``ReproConfig`` rejection of invalid stage dicts (satellite #4).
"""

import warnings

import numpy as np
import pytest

from repro.api import DataConfig, ModelConfig, ReproConfig, Session, get_kernel
from repro.ml.trainer import TrainingConfig
from repro.pipeline import SweepConfig, WorkflowConfig, run_workflow
from repro.synth import build_corpus, run_cases

TINY_CONFIG = dict(
    data=lambda: DataConfig(
        sweep=SweepConfig(size_scales=(1.0,), team_counts=(64,),
                          thread_counts=(8, 64),
                          kernels=[get_kernel("matmul")]),
        platforms=("v100",)),
    model=lambda: ModelConfig(hidden_dim=10),
    training=lambda: TrainingConfig(epochs=2, batch_size=16,
                                    learning_rate=2e-3, seed=0),
)


def tiny_config() -> ReproConfig:
    return ReproConfig(data=TINY_CONFIG["data"](), model=TINY_CONFIG["model"](),
                       training=TINY_CONFIG["training"](), seed=0)


@pytest.fixture(scope="module")
def session():
    session = Session(tiny_config())
    session.train()
    return session


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(24, seed=17)


class TestServingEquivalences:
    def test_cold_and_warm_predict_batch_agree(self, session, corpus):
        session.clear_cache()
        before = session.cache_info()
        cold = session.predict_batch(corpus.sources(), "v100")
        mid = session.cache_info()
        warm = session.predict_batch(corpus.sources(), "v100")
        after = session.cache_info()

        assert cold.shape == (len(corpus),)
        assert np.isfinite(cold).all()
        np.testing.assert_array_equal(warm, cold)
        assert mid.misses - before.misses == len(corpus)
        assert after.hits - mid.hits == len(corpus)

    def test_batch_equals_singles(self, session, corpus):
        subset = corpus.sources()[:6]
        batched = session.predict_batch(subset, "v100")
        singles = [session.predict(spec, "v100") for spec in subset]
        np.testing.assert_allclose(batched, singles, rtol=1e-6)

    def test_float64_parity_mode_close_to_serving_dtype(self, session, corpus):
        subset = corpus.sources()[:8]
        served = session.predict_batch(subset, "v100")               # float32
        exact = session.predict_batch(subset, "v100", dtype=None)    # float64
        scale = 1.0 + np.abs(exact).max()
        np.testing.assert_allclose(served, exact, atol=1e-3 * scale)

    def test_repeated_traffic_is_stable(self, session, corpus):
        # soak-shaped: the same corpus tiled over must stay bit-stable
        tiled = corpus.repeated(3)
        predictions = session.predict_batch(tiled, "v100")
        per_pass = predictions.reshape(3, len(corpus))
        np.testing.assert_array_equal(per_pass[0], per_pass[1])
        np.testing.assert_array_equal(per_pass[1], per_pass[2])

    def test_execution_context_distinguishes_cache_entries(self, session, corpus):
        spec = corpus.specs[0]
        session.clear_cache()
        session.predict(spec.source, "v100", sizes=spec.sizes, num_teams=8)
        misses = session.cache_info().misses
        session.predict(spec.source, "v100", sizes=spec.sizes, num_teams=16)
        assert session.cache_info().misses == misses + 1


class TestConfigRoundtrip:
    def test_config_roundtrip_corpus(self):
        report = run_cases("config-roundtrip")
        assert report.ok and report.cases >= 2


class TestContextIsolation:
    """Seeded concurrent workloads: no engine state leaks across threads."""

    def test_serving_context_isolation_corpus(self):
        report = run_cases("serving-context-isolation")
        assert report.ok and report.cases >= 2


class TestServeUnderFaults:
    """Seeded chaos sweep: under fault injection every request either
    returns a float64 result bit-identical to the fault-free reference or
    a typed reliability error — never a hang, never silent corruption."""

    def test_serve_under_faults_corpus(self):
        report = run_cases("serve-under-faults")
        assert report.ok and report.cases >= 2


class TestTraceCompleteness:
    """Seeded tracing sweep: under any topology and seeded faults, every
    submitted request yields exactly one completed, well-formed
    ``serve.request`` span tree (validated + JSON fixpoint) or a typed
    error — trace accounting balances, nothing leaks or double-delivers."""

    def test_trace_completeness_corpus(self):
        report = run_cases("trace-completeness")
        assert report.ok and report.cases >= 2


class TestInvalidStageDicts:
    """ReproConfig.from_dict must reject bad stage payloads (satellite #4)."""

    def test_invalid_model_dict(self):
        with pytest.raises(ValueError, match="hidden_dim"):
            ReproConfig.from_dict({"model": {"hidden_dim": 0}})
        with pytest.raises(ValueError, match="unknown convolution"):
            ReproConfig.from_dict({"model": {"conv": "transformer"}})
        with pytest.raises(ValueError, match="readout"):
            ReproConfig.from_dict({"model": {"readout": "attention"}})

    def test_invalid_graph_dict(self):
        with pytest.raises(ValueError, match="unknown graph variant"):
            ReproConfig.from_dict({"graph": {"variant": "hypergraph"}})
        with pytest.raises(ValueError, match="default_trip_count"):
            ReproConfig.from_dict({"graph": {"default_trip_count": 0}})

    def test_invalid_data_dict(self):
        with pytest.raises(ValueError, match="unknown platform"):
            ReproConfig.from_dict({"data": {"platforms": ["tpu-v9"]}})
        with pytest.raises(ValueError, match="min_platform_samples"):
            ReproConfig.from_dict({"data": {"min_platform_samples": 1}})

    def test_invalid_top_level_values(self):
        with pytest.raises(ValueError, match="train_fraction"):
            ReproConfig.from_dict({"train_fraction": 1.5})
        with pytest.raises(TypeError, match="mapping"):
            ReproConfig.from_dict([("model", {})])

    def test_unknown_stage_keys_raise(self):
        with pytest.raises(TypeError):
            ReproConfig.from_dict({"model": {"not_a_field": 1}})


class TestWorkflowShim:
    """run_workflow stays a faithful DeprecationWarning shim (satellite #4)."""

    def test_emits_deprecation_warning_and_delegates(self, monkeypatch):
        from repro.api import session as session_module

        captured = {}

        def fake_workflow(self):
            captured["config"] = self.config
            return "sentinel"

        monkeypatch.setattr(session_module.Session, "workflow", fake_workflow)
        config = WorkflowConfig(sweep=SweepConfig(size_scales=(1.0,)),
                                hidden_dim=9, conv="rgcn", seed=3,
                                train_fraction=0.8, noisy_runtimes=False)
        with pytest.warns(DeprecationWarning, match="run_workflow is deprecated"):
            result = run_workflow(config)
        assert result == "sentinel"
        adapted = captured["config"]
        assert adapted.model.hidden_dim == 9
        assert adapted.model.conv == "rgcn"
        assert adapted.seed == 3
        assert adapted.train_fraction == 0.8
        assert adapted.data.noisy_runtimes is False
        assert adapted.data.sweep.size_scales == (1.0,)

    def test_shim_result_equals_pipeline_path(self):
        # the real end-to-end equality: legacy shim vs Session on the same
        # adapted config must produce identical metrics (deterministic seeds)
        legacy_config = WorkflowConfig(
            sweep=TINY_CONFIG["data"]().sweep, training=TINY_CONFIG["training"](),
            hidden_dim=10, seed=0)
        from repro.hardware import V100
        with pytest.warns(DeprecationWarning):
            legacy = run_workflow(legacy_config, platforms=(V100,))
        modern = Session(ReproConfig.from_workflow_config(
            legacy_config, (V100,))).workflow()
        assert legacy.metrics_table() == modern.metrics_table()

    def test_no_warning_from_session_path(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Session(tiny_config())     # construction must not warn
