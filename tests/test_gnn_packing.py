"""Tests for :mod:`repro.gnn.packing` — the block-diagonal multi-graph pack.

Covers the merged-layout construction (offset arithmetic must reproduce a
from-scratch build of the concatenated graph exactly), the separate packed
cache keyspace (packing combinatorial compositions must not thrash the main
edge-layout LRU serving keeps hot), the packed-cache eviction order, the
``pack_graphs`` payload contract, and the ``packed-forward-parity`` corpus
sweep asserting float64 bit-identity between packed and per-graph serving.
"""

import numpy as np
import pytest

from repro.gnn import (
    EdgeLayoutCache,
    PackedLayoutCache,
    ParaGraphModel,
    get_edge_layout,
    layout_content_key,
    merge_layouts,
    pack_graphs,
    split_packs,
)
from repro.ml.dataset import GraphDataset
from repro.ml.trainer import Trainer, TrainingConfig
from repro.synth import random_encoded_graph, run_cases

RELATIONS = 8


def _layouts(seeds, cache=None):
    graphs = [random_encoded_graph(seed) for seed in seeds]
    layouts = [get_edge_layout(g.edge_index, g.edge_type, g.num_nodes,
                               RELATIONS, cache=cache) for g in graphs]
    return graphs, layouts


class TestCorpusSweep:
    def test_packed_forward_parity_corpus(self):
        report = run_cases("packed-forward-parity")
        assert report.ok and report.cases >= 2


class TestMergeLayouts:
    def test_merge_matches_from_scratch_build_of_concatenated_graph(self):
        graphs, layouts = _layouts([11, 12, 13])
        packed = merge_layouts(layouts)
        # build the same block-diagonal graph directly and compare layouts:
        # the O(E) offset arithmetic must reproduce the full sort bit for bit
        node_offsets = np.concatenate(
            [[0], np.cumsum([g.num_nodes for g in graphs])])
        edge_index = np.concatenate(
            [g.edge_index + off for g, off in zip(graphs, node_offsets)],
            axis=1)
        edge_type = np.concatenate([g.edge_type for g in graphs])
        direct = get_edge_layout(edge_index, edge_type, int(node_offsets[-1]),
                                 RELATIONS, cache=EdgeLayoutCache(capacity=0))
        for name in ("perm", "src", "dst", "rel", "offsets", "dst_order",
                     "dst_starts", "dst_unique", "cell_src", "cell_dst"):
            np.testing.assert_array_equal(
                getattr(packed.layout, name), getattr(direct, name),
                err_msg=f"merged layout field {name!r} diverged from a "
                        "from-scratch build")
        assert packed.layout.num_nodes == direct.num_nodes
        np.testing.assert_array_equal(
            packed.batch,
            np.repeat(np.arange(len(graphs)),
                      [g.num_nodes for g in graphs]))

    def test_solo_rows_recover_each_graphs_solo_edge_order(self):
        graphs, layouts = _layouts([21, 22, 23, 24])
        packed = merge_layouts(layouts)
        for g, solo in enumerate(layouts):
            rows = packed.solo_rows(g)
            offset = int(packed.node_offsets[g])
            np.testing.assert_array_equal(packed.layout.src[rows] - offset,
                                          solo.src)
            np.testing.assert_array_equal(packed.layout.dst[rows] - offset,
                                          solo.dst)
            np.testing.assert_array_equal(packed.layout.rel[rows], solo.rel)

    def test_chunks_partition_each_graphs_edges_by_relation(self):
        graphs, layouts = _layouts([31, 32])
        packed = merge_layouts(layouts)
        for g, chunk_list in enumerate(packed.chunks):
            total = 0
            for relation, lo, hi in chunk_list:
                assert hi > lo
                assert (packed.layout.rel[lo:hi] == relation).all()
                total += hi - lo
            assert total == layouts[g].num_edges

    def test_single_graph_pack_reuses_the_solo_layout_object(self):
        _, layouts = _layouts([41])
        packed = merge_layouts(layouts[:1])
        assert packed.layout is layouts[0]
        assert packed.num_graphs == 1

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="at least one layout"):
            merge_layouts([])

    def test_mismatched_relation_counts_rejected(self):
        edge_index = np.array([[0, 1], [1, 0]], dtype=np.int64)
        edge_type = np.array([0, 1], dtype=np.int64)
        two = get_edge_layout(edge_index, edge_type, 2, 2,
                              cache=EdgeLayoutCache(capacity=0))
        eight = get_edge_layout(edge_index, edge_type, 2, 8,
                                cache=EdgeLayoutCache(capacity=0))
        with pytest.raises(ValueError, match="num_relations"):
            merge_layouts([two, eight])


class TestPackedCacheKeyspace:
    """Satellite: packed layouts get their own content-addressed keyspace."""

    def test_compositions_do_not_thrash_the_main_layout_lru(self):
        layout_cache = EdgeLayoutCache(capacity=8)
        packed_cache = PackedLayoutCache(capacity=64)
        graphs = [random_encoded_graph(seed) for seed in range(61, 65)]
        hot = [get_edge_layout(g.edge_index, g.edge_type, g.num_nodes,
                               RELATIONS, cache=layout_cache) for g in graphs]
        misses = layout_cache.info().misses
        # pack many distinct compositions — combinatorially more than the
        # main LRU's capacity — through the same per-graph cache
        rng = np.random.default_rng(0)
        for _ in range(32):
            order = rng.permutation(len(graphs))
            chosen = [graphs[i] for i in order[:2 + int(rng.integers(0, 3))]]
            pack_graphs(chosen, RELATIONS, cache=packed_cache,
                        layout_cache=layout_cache)
        info = layout_cache.info()
        assert info.misses == misses, \
            "packing evicted (then rebuilt) hot single-graph layouts"
        for g, layout in zip(graphs, hot):
            assert layout_cache.get(g.edge_index, g.edge_type, g.num_nodes,
                                    RELATIONS) is layout

    def test_same_composition_hits_and_reuses_one_merged_layout(self):
        layout_cache = EdgeLayoutCache(capacity=8)
        packed_cache = PackedLayoutCache(capacity=4)
        graphs = [random_encoded_graph(seed) for seed in (71, 72)]
        first = pack_graphs(graphs, RELATIONS, cache=packed_cache,
                            layout_cache=layout_cache)
        again = pack_graphs(graphs, RELATIONS, cache=packed_cache,
                            layout_cache=layout_cache)
        assert again.layout is first.layout
        reversed_pack = pack_graphs(graphs[::-1], RELATIONS,
                                    cache=packed_cache,
                                    layout_cache=layout_cache)
        assert reversed_pack.layout is not first.layout   # order is the key
        assert packed_cache.info().hits == 1
        assert packed_cache.info().misses == 2

    def test_eviction_follows_recency_not_insertion(self):
        cache = PackedLayoutCache(capacity=2)
        _, layouts = _layouts([81, 82, 83])
        keys = [bytes([index]) * 16 for index in range(3)]

        def get(*indices):
            return cache.get([keys[i] for i in indices],
                             [layouts[i] for i in indices])

        ab = get(0, 1)
        get(1, 0)
        assert get(0, 1) is ab          # touch AB: BA becomes LRU
        get(0, 2)                       # evicts BA, not AB
        misses = cache.info().misses
        assert get(0, 1) is ab
        assert cache.info().misses == misses      # AB survived
        get(1, 0)
        assert cache.info().misses == misses + 1  # BA was evicted

    def test_zero_capacity_never_stores(self):
        cache = PackedLayoutCache(capacity=0)
        _, layouts = _layouts([91, 92])
        key = [b"k" * 16, b"l" * 16]
        cache.get(key, layouts)
        cache.get(key, layouts)
        assert cache.info().size == 0
        assert cache.info().misses == 2


class TestPackGraphs:
    def test_payload_contract(self):
        graphs = [random_encoded_graph(seed) for seed in (101, 102, 103)]
        batch = pack_graphs(graphs, RELATIONS,
                            cache=PackedLayoutCache(capacity=0),
                            layout_cache=EdgeLayoutCache(capacity=0))
        total_nodes = sum(g.num_nodes for g in graphs)
        assert batch.node_features.shape == (total_nodes,
                                             graphs[0].node_features.shape[1])
        assert batch.num_graphs == len(graphs)
        assert batch.aux_features.shape == (len(graphs), 2)
        assert batch.targets.shape == (len(graphs),)
        assert batch.edge_weight.shape == (batch.layout.num_edges,)
        assert (np.diff(batch.layout.batch) >= 0).all()

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="at least one graph"):
            pack_graphs([], RELATIONS)

    def test_merged_arrays_are_frozen(self):
        graphs = [random_encoded_graph(seed) for seed in (111, 112)]
        batch = pack_graphs(graphs, RELATIONS,
                            cache=PackedLayoutCache(capacity=0),
                            layout_cache=EdgeLayoutCache(capacity=0))
        with pytest.raises(ValueError):
            batch.layout.layout.src[0] = 0
        with pytest.raises(ValueError):
            batch.layout.batch[0] = 0

    def test_layout_content_key_is_stable_and_content_addressed(self):
        g = random_encoded_graph(121)
        key = layout_content_key(g.edge_index, g.edge_type, g.num_nodes,
                                 RELATIONS)
        assert key == layout_content_key(g.edge_index.copy(),
                                         g.edge_type.copy(), g.num_nodes,
                                         RELATIONS)
        assert key != layout_content_key(g.edge_index, g.edge_type,
                                         g.num_nodes + 1, RELATIONS)


class TestSplitPacks:
    def test_budget_respected_and_order_preserved(self):
        graphs = [random_encoded_graph(seed) for seed in range(161, 169)]
        packs = split_packs(graphs, node_budget=60)
        assert [g for pack in packs for g in pack] == graphs
        for pack in packs:
            total = sum(g.node_features.shape[0] for g in pack)
            assert total <= 60 or len(pack) == 1

    def test_oversized_graph_still_packs_alone(self):
        graphs = [random_encoded_graph(seed) for seed in (171, 172, 173)]
        packs = split_packs(graphs, node_budget=1)
        assert [len(pack) for pack in packs] == [1, 1, 1]

    def test_splitting_is_bit_transparent(self):
        # a batch big enough that predict_packed splits it into several
        # sub-packs must still match the per-graph loop bit for bit
        from repro.synth.graph_gen import GraphGenConfig

        shapes = GraphGenConfig(num_nodes=(800, 1200), feature_dim=6)
        graphs = [random_encoded_graph(seed, shapes)
                  for seed in range(181, 187)]
        assert sum(g.node_features.shape[0] for g in graphs) > 4096
        model = ParaGraphModel(node_feature_dim=6, hidden_dim=4,
                               num_conv_layers=1, seed=0)
        trainer = Trainer(model, TrainingConfig(epochs=1))
        trainer._fit_scalers(GraphDataset(graphs, name="split"))
        reference = np.concatenate(
            [trainer.predict_packed([g]) for g in graphs])
        np.testing.assert_array_equal(trainer.predict_packed(graphs),
                                      reference)


class TestModelFallback:
    def test_gat_models_report_no_packed_support(self):
        model = ParaGraphModel(node_feature_dim=6, hidden_dim=4, conv="gat",
                               num_conv_layers=1, seed=0)
        assert not model.supports_packed()

    def test_trainer_falls_back_to_the_per_graph_loop(self):
        from repro.synth.graph_gen import GraphGenConfig

        shapes = GraphGenConfig(num_nodes=(2, 10), feature_dim=6)
        graphs = [random_encoded_graph(seed, shapes) for seed in (131, 132)]
        model = ParaGraphModel(node_feature_dim=6, hidden_dim=4, conv="gat",
                               num_conv_layers=1, seed=0)
        trainer = Trainer(model, TrainingConfig(epochs=1))
        trainer._fit_scalers(GraphDataset(graphs, name="fallback"))
        np.testing.assert_array_equal(
            trainer.predict_packed(graphs),
            trainer.predict(GraphDataset(graphs, name="fallback")))

    def test_predict_packed_requires_fitted_scalers(self):
        model = ParaGraphModel(node_feature_dim=6, hidden_dim=4,
                               num_conv_layers=1, seed=0)
        trainer = Trainer(model, TrainingConfig(epochs=1))
        with pytest.raises(RuntimeError, match="fit must run"):
            trainer.predict_packed([random_encoded_graph(141)])

    def test_empty_request_list_returns_empty(self):
        model = ParaGraphModel(node_feature_dim=6, hidden_dim=4,
                               num_conv_layers=1, seed=0)
        trainer = Trainer(model, TrainingConfig(epochs=1))
        trainer._fit_scalers(GraphDataset([random_encoded_graph(151)],
                                          name="empty"))
        assert trainer.predict_packed([]).shape == (0,)
