"""Integration tests crossing every subsystem of the reproduction."""

import numpy as np
import pytest

from repro.advisor import ALL_VARIANTS, OpenMPAdvisor, VariantKind, generate_variant
from repro.clang import analyze, parse_source
from repro.hardware import POWER9, V100, RuntimeSimulator, analytical_cost_model
from repro.kernels import get_kernel
from repro.ml import GraphDataset, Trainer, TrainingConfig, train_val_split
from repro.gnn import ParaGraphModel
from repro.paragraph import EdgeType, GraphEncoder, build_paragraph
from repro.pipeline import (
    Configuration,
    SweepConfig,
    WorkflowConfig,
    encode_configuration,
    generate_configurations,
    run_workflow,
)


class TestSourceToGraphToPrediction:
    """The full path of Fig. 3 on a single kernel, stage by stage."""

    def test_variant_source_to_weighted_graph(self):
        kernel = get_kernel("laplace_sweep")
        sizes = {"N": 128, "M": 128}
        variant = generate_variant(kernel, VariantKind.GPU_COLLAPSE, sizes)
        ast = analyze(parse_source(variant.source))
        graph = build_paragraph(ast, env=kernel.environment(sizes),
                                num_teams=64, num_threads=64)
        graph.validate()
        # the collapsed nest should produce heavy Child edges (127*127 iterations
        # divided by 64*64 parallelism ~= 3.94) somewhere inside the loop body
        weights = [e.weight for e in graph.edges_of_type(EdgeType.CHILD)]
        assert max(weights) == pytest.approx(127 * 127 / (64 * 64))

    def test_trained_model_orders_small_vs_large_kernel(self):
        """After training on simulated data, predictions must at least order a
        clearly-small kernel before a clearly-large one."""
        kernel = get_kernel("matmul")
        encoder = GraphEncoder()
        simulator = RuntimeSimulator(V100)
        samples = []
        rng = np.random.default_rng(0)
        for size in (32, 48, 64, 96, 128, 192, 256, 320, 384, 448, 512):
            for kind in (VariantKind.GPU, VariantKind.GPU_COLLAPSE):
                sizes = {"N": size, "M": size, "K": size}
                variant = generate_variant(kernel, kind, sizes)
                config = Configuration(variant, sizes, 128, 64,
                                       repetition=int(rng.integers(0, 3)))
                runtime = simulator.measure(variant, sizes, 128, 64, config.repetition)
                samples.append(encode_configuration(config, encoder, runtime))
        dataset = GraphDataset(samples)
        train, _ = train_val_split(dataset, 0.9, seed=0)
        model = ParaGraphModel(encoder.feature_dim, hidden_dim=16, seed=0)
        trainer = Trainer(model, TrainingConfig(epochs=30, batch_size=8,
                                                learning_rate=3e-3, seed=0))
        trainer.fit(train, None)
        tiny_sizes = {"N": 32, "M": 32, "K": 32}
        huge_sizes = {"N": 512, "M": 512, "K": 512}
        tiny = encode_configuration(
            Configuration(generate_variant(kernel, VariantKind.GPU_COLLAPSE, tiny_sizes),
                          tiny_sizes, 128, 64), encoder, 0.0)
        huge = encode_configuration(
            Configuration(generate_variant(kernel, VariantKind.GPU_COLLAPSE, huge_sizes),
                          huge_sizes, 128, 64), encoder, 0.0)
        predictions = trainer.predict(GraphDataset([tiny, huge]))
        assert predictions[1] > predictions[0]


class TestAdvisorEndToEnd:
    def test_recommendation_matches_simulated_ground_truth(self):
        """Using the analytical model as the Advisor cost model, the recommended
        variant must be the one with the smallest noise-free simulated runtime."""
        kernel = get_kernel("covariance_matrix")
        sizes = {"N": 2048, "M": 512}
        advisor = OpenMPAdvisor(analytical_cost_model(V100))
        recommendation = advisor.recommend(kernel, sizes, num_teams=256, num_threads=128,
                                           kinds=[k for k in ALL_VARIANTS if k.is_gpu])
        simulator = RuntimeSimulator(V100, noisy=False)
        truth = {
            kind.value: simulator.measure(generate_variant(kernel, kind, sizes), sizes,
                                          num_teams=256, num_threads=128)
            for kind in ALL_VARIANTS if kind.is_gpu
        }
        assert recommendation.best_kind.value == min(truth, key=truth.get)

    def test_cpu_advisor_on_power9(self):
        advisor = OpenMPAdvisor(analytical_cost_model(POWER9))
        recommendation = advisor.recommend(
            get_kernel("matmul"), {"N": 256, "M": 256, "K": 256}, num_threads=22,
            kinds=[VariantKind.CPU, VariantKind.CPU_COLLAPSE])
        assert recommendation.best_kind in (VariantKind.CPU, VariantKind.CPU_COLLAPSE)


class TestWorkflowProducesLearnableSignal:
    def test_validation_error_improves_over_training(self):
        config = WorkflowConfig(
            sweep=SweepConfig(size_scales=(0.5, 1.0, 2.0), team_counts=(64,),
                              thread_counts=(8, 64),
                              kernels=[get_kernel("matmul"), get_kernel("matvec"),
                                       get_kernel("transpose"), get_kernel("knn_distance")]),
            training=TrainingConfig(epochs=15, batch_size=16, learning_rate=3e-3, seed=0),
            hidden_dim=16,
        )
        result = run_workflow(config, platforms=(V100,))
        history = result.platforms["NVIDIA V100"].history
        # late-training error must beat the first epoch's error
        assert min(history.val_rmses[-5:]) < history.val_rmses[0]

    def test_dataset_statistics_show_cpu_gpu_count_difference(self):
        config = WorkflowConfig(
            sweep=SweepConfig(size_scales=(1.0,), team_counts=(64,), thread_counts=(8,),
                              kernels=[get_kernel("matmul")]),
            training=TrainingConfig(epochs=1, batch_size=4, seed=0),
            hidden_dim=8,
        )
        result = run_workflow(config, platforms=(V100, POWER9))
        v100_count = len(result.build.datasets["NVIDIA V100"])
        power9_count = len(result.build.datasets["IBM POWER9"])
        # 4 GPU variants vs 2 CPU variants => GPU dataset twice as large (Table II shape)
        assert v100_count == 2 * power9_count
