"""Unit and property tests for the C lexer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clang.lexer import LexError, Lexer, Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_whitespace_only(self):
        assert tokenize("   \n\t  ")[-1].kind is TokenKind.EOF
        assert len(tokenize("   \n\t  ")) == 1

    def test_identifier(self):
        assert kinds("foo") == [TokenKind.IDENTIFIER]

    def test_identifier_with_underscore_and_digits(self):
        assert texts("_my_var2") == ["_my_var2"]

    def test_keyword(self):
        assert kinds("int") == [TokenKind.KEYWORD]

    def test_keyword_vs_identifier_prefix(self):
        # "integer" starts with "int" but is an identifier
        assert kinds("integer") == [TokenKind.IDENTIFIER]

    def test_int_literal(self):
        assert kinds("42") == [TokenKind.INT_LITERAL]

    def test_hex_literal(self):
        tokens = tokenize("0xFF")
        assert tokens[0].kind is TokenKind.INT_LITERAL
        assert tokens[0].text == "0xFF"

    def test_float_literal(self):
        assert kinds("3.14") == [TokenKind.FLOAT_LITERAL]

    def test_float_with_exponent(self):
        assert kinds("1e10 2.5e-3") == [TokenKind.FLOAT_LITERAL, TokenKind.FLOAT_LITERAL]

    def test_float_suffix(self):
        assert kinds("1.0f") == [TokenKind.FLOAT_LITERAL]

    def test_integer_suffixes(self):
        assert kinds("10UL") == [TokenKind.INT_LITERAL]

    def test_char_literal(self):
        assert kinds("'a'") == [TokenKind.CHAR_LITERAL]

    def test_char_literal_escape(self):
        assert texts(r"'\n'") == [r"'\n'"]

    def test_string_literal(self):
        assert kinds('"hello world"') == [TokenKind.STRING_LITERAL]

    def test_string_with_escaped_quote(self):
        assert kinds(r'"a\"b"') == [TokenKind.STRING_LITERAL]

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* not closed")


class TestOperators:
    def test_simple_operators(self):
        assert texts("a + b * c") == ["a", "+", "b", "*", "c"]

    def test_maximal_munch_shift(self):
        assert texts("a <<= 2") == ["a", "<<=", "2"]

    def test_maximal_munch_increment(self):
        assert texts("i++") == ["i", "++"]

    def test_arrow_vs_minus(self):
        assert texts("p->x - y") == ["p", "->", "x", "-", "y"]

    def test_comparison_operators(self):
        assert texts("a <= b >= c == d != e") == ["a", "<=", "b", ">=", "c", "==", "d", "!=", "e"]

    def test_logical_operators(self):
        assert texts("a && b || !c") == ["a", "&&", "b", "||", "!", "c"]

    def test_all_punctuation_round_trip(self):
        source = "( ) [ ] { } ; , . ? :"
        assert texts(source) == source.split()


class TestCommentsAndPragmas:
    def test_line_comment_skipped(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* comment \n over lines */ b") == ["a", "b"]

    def test_include_skipped(self):
        assert texts("#include <stdio.h>\nint x;") == ["int", "x", ";"]

    def test_define_skipped(self):
        assert texts("#define N 100\nint x;") == ["int", "x", ";"]

    def test_pragma_omp_token(self):
        tokens = tokenize("#pragma omp parallel for\nfor(;;);")
        assert tokens[0].kind is TokenKind.PRAGMA
        assert tokens[0].text == "omp parallel for"

    def test_pragma_with_line_continuation(self):
        tokens = tokenize("#pragma omp parallel \\\n    for\nint x;")
        assert tokens[0].kind is TokenKind.PRAGMA
        assert "parallel" in tokens[0].text and "for" in tokens[0].text


class TestLocations:
    def test_line_and_column_tracking(self):
        tokens = tokenize("int x;\n  x = 1;")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        x_assign = [t for t in tokens if t.text == "=" ][0]
        assert x_assign.line == 2

    def test_token_indices_are_sequential(self):
        tokens = tokenize("a b c d")
        assert [t.index for t in tokens] == list(range(len(tokens)))

    def test_is_punct_and_is_keyword_helpers(self):
        tokens = tokenize("for (")
        assert tokens[0].is_keyword("for")
        assert tokens[1].is_punct("(")
        assert not tokens[0].is_punct("for")


@st.composite
def simple_c_expression(draw):
    """Generate small well-formed arithmetic expressions."""
    depth = draw(st.integers(min_value=0, max_value=3))

    def build(level):
        if level == 0:
            return draw(st.sampled_from(["a", "b", "x1", "42", "3.5"]))
        op = draw(st.sampled_from(["+", "-", "*", "/"]))
        return f"({build(level - 1)} {op} {build(level - 1)})"

    return build(depth)


class TestLexerProperties:
    @given(simple_c_expression())
    @settings(max_examples=50, deadline=None)
    def test_expression_lexes_without_error(self, expression):
        tokens = tokenize(expression)
        assert tokens[-1].kind is TokenKind.EOF

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_identifier_round_trip(self, name):
        tokens = tokenize(name)
        assert tokens[0].text == name
        assert tokens[0].kind in (TokenKind.IDENTIFIER, TokenKind.KEYWORD)

    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=50, deadline=None)
    def test_integer_round_trip(self, value):
        tokens = tokenize(str(value))
        assert tokens[0].kind is TokenKind.INT_LITERAL
        assert int(tokens[0].text) == value

    @given(st.lists(st.sampled_from(["int", "x", "42", "+", ";", "(", ")"]),
                    min_size=0, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_token_count_matches_input_pieces(self, pieces):
        source = " ".join(pieces)
        tokens = tokenize(source)
        assert len(tokens) == len(pieces) + 1  # + EOF
