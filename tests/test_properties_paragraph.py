"""ParaGraph property suite: structural invariants over the synth corpus.

Sweeps the ``paragraph-invariants`` scenario (generated kernels through
parse → analyze → build → encode) and the ``graph-validity`` scenario
(random graphs straight from :mod:`repro.synth.graph_gen`), plus targeted
assertions about the invariants themselves.
"""

import numpy as np
import pytest

from repro.clang import analyze, parse_source
from repro.paragraph import EdgeType, GraphVariant, build_paragraph
from repro.paragraph.graph import ParaGraph
from repro.synth import GraphGenConfig, random_paragraph, run_cases


class TestCorpusSweeps:
    def test_paragraph_invariants_corpus(self):
        report = run_cases("paragraph-invariants")
        assert report.ok and report.cases >= 2

    def test_graph_validity_corpus(self):
        report = run_cases("graph-validity")
        assert report.ok and report.cases >= 2


class TestInvariantMachinery:
    """The invariants must actually bite: broken graphs must fail them."""

    def test_validate_rejects_dangling_edge(self):
        from repro.paragraph.edges import Edge
        graph = ParaGraph()
        graph.add_node("VarDecl")
        graph.edges.append(Edge(0, 5, EdgeType.REF, 0.0))
        with pytest.raises(ValueError, match="dangling"):
            graph.validate()

    def test_validate_rejects_weighted_augmentation_edge(self):
        from repro.paragraph.edges import Edge
        graph = ParaGraph()
        graph.add_node("VarDecl")
        graph.add_node("DeclRefExpr")
        graph.edges.append(Edge(0, 1, EdgeType.NEXT_SIB, 2.0))
        with pytest.raises(ValueError, match="non-zero weight"):
            graph.validate()

    def test_validate_rejects_zero_weight_child_edge(self):
        from repro.paragraph.edges import Edge
        graph = ParaGraph()
        graph.add_node("IfStmt")
        graph.add_node("BinaryOperator")
        graph.edges.append(Edge(0, 1, EdgeType.CHILD, 0.0))
        with pytest.raises(ValueError, match="non-positive weight"):
            graph.validate()


class TestDegreeSkewAndCorners:
    def test_hub_exponent_skews_in_degree(self):
        flat = GraphGenConfig(num_nodes=(60, 60), hub_exponent=0.0,
                              corner_probability=0.0, edges_per_node=(3.0, 3.0))
        skewed = GraphGenConfig(num_nodes=(60, 60), hub_exponent=2.5,
                                corner_probability=0.0, edges_per_node=(3.0, 3.0))

        def max_in_degree(config):
            degrees = []
            for seed in range(6):
                graph = random_paragraph(seed, config)
                dst = graph.edge_index()[1]
                degrees.append(np.bincount(dst, minlength=graph.num_nodes).max())
            return np.mean(degrees)

        assert max_in_degree(skewed) > max_in_degree(flat)

    def test_isolated_nodes_exist_somewhere_in_corpus(self):
        found = False
        for seed in range(40):
            graph = random_paragraph(seed)
            if graph.num_edges == 0 and graph.num_nodes > 1:
                continue
            touched = set(graph.edge_index().ravel().tolist()) if graph.num_edges else set()
            if len(touched) < graph.num_nodes:
                found = True
                break
        assert found, "corpus never produced an isolated node"


class TestVariantNesting:
    SOURCE = (
        "void f(int n, double *A) {\n"
        "  for (int i = 0; i < n; i++) {\n"
        "    if (i > 2) { A[i] = A[i - 1]; } else { A[i] = 0.0; }\n"
        "  }\n"
        "}\n"
    )

    def test_variant_edge_sets_nest(self):
        ast = analyze(parse_source(self.SOURCE))
        raw = build_paragraph(ast, variant=GraphVariant.RAW_AST)
        augmented = build_paragraph(ast, variant=GraphVariant.AUGMENTED_AST)
        full = build_paragraph(ast, variant=GraphVariant.PARAGRAPH)
        assert raw.num_edges < augmented.num_edges == full.num_edges
        # augmentation never changes the node set
        assert raw.num_nodes == augmented.num_nodes == full.num_nodes
        # weights are the only difference between augmented and full
        augmented_types = [e.as_tuple()[:3] for e in augmented.edges]
        full_types = [e.as_tuple()[:3] for e in full.edges]
        assert augmented_types == full_types
        assert any(e.weight > 1.0 for e in full.edges
                   if e.edge_type is EdgeType.CHILD)
