"""Tests for the COMPOFF baseline: feature extraction and the MLP cost model."""

import numpy as np
import pytest

from repro.advisor import VariantKind, generate_variant
from repro.compoff import (
    COMPOFFConfig,
    COMPOFFModel,
    FEATURE_NAMES,
    FeatureSample,
    NUM_FEATURES,
    build_feature_matrix,
    build_target_vector,
    extract_features,
)
from repro.hardware import RuntimeSimulator, V100
from repro.kernels import get_kernel


def make_samples(n=40, seed=0):
    """Small synthetic COMPOFF training set from simulated V100 runs."""
    rng = np.random.default_rng(seed)
    simulator = RuntimeSimulator(V100)
    kernel = get_kernel("matmul")
    samples = []
    for i in range(n):
        size = int(rng.choice([32, 64, 128, 256]))
        sizes = {"N": size, "M": size, "K": size}
        kind = VariantKind.GPU_COLLAPSE if i % 2 == 0 else VariantKind.GPU_MEM
        variant = generate_variant(kernel, kind, sizes)
        teams, threads = int(rng.choice([32, 128])), int(rng.choice([16, 128]))
        runtime = simulator.measure(variant, sizes, teams, threads, repetition=i)
        features = extract_features(variant, sizes, teams, threads)
        samples.append(FeatureSample(features, runtime, {"size": size}))
    return samples


class TestFeatureExtraction:
    def test_feature_vector_length_matches_names(self):
        variant = generate_variant(get_kernel("matmul"), VariantKind.GPU)
        features = extract_features(variant)
        assert features.shape == (NUM_FEATURES,)
        assert len(FEATURE_NAMES) == NUM_FEATURES

    def test_gpu_flag_set(self):
        gpu = extract_features(generate_variant(get_kernel("matmul"), VariantKind.GPU))
        cpu = extract_features(generate_variant(get_kernel("matmul"), VariantKind.CPU))
        index = list(FEATURE_NAMES).index("is_gpu")
        assert gpu[index] == 1.0 and cpu[index] == 0.0

    def test_transfer_bytes_only_for_mem_variants(self):
        index = list(FEATURE_NAMES).index("log_transfer_bytes")
        mem = extract_features(generate_variant(get_kernel("matmul"), VariantKind.GPU_MEM))
        resident = extract_features(generate_variant(get_kernel("matmul"), VariantKind.GPU))
        assert mem[index] > 0 and resident[index] == 0.0

    def test_collapse_level_feature(self):
        index = list(FEATURE_NAMES).index("collapse_level")
        collapsed = extract_features(
            generate_variant(get_kernel("matmul"), VariantKind.GPU_COLLAPSE))
        assert collapsed[index] == 2.0

    def test_features_scale_with_problem_size(self):
        index = list(FEATURE_NAMES).index("log_total_iterations")
        small = extract_features(generate_variant(get_kernel("matmul"), VariantKind.GPU,
                                                  {"N": 32, "M": 32, "K": 32}),
                                 {"N": 32, "M": 32, "K": 32})
        large = extract_features(generate_variant(get_kernel("matmul"), VariantKind.GPU,
                                                  {"N": 256, "M": 256, "K": 256}),
                                 {"N": 256, "M": 256, "K": 256})
        assert large[index] > small[index]

    def test_teams_threads_features(self):
        variant = generate_variant(get_kernel("matvec"), VariantKind.GPU)
        features = extract_features(variant, num_teams=64, num_threads=128)
        teams_index = list(FEATURE_NAMES).index("log_num_teams")
        threads_index = list(FEATURE_NAMES).index("log_num_threads")
        assert features[teams_index] == pytest.approx(np.log1p(64))
        assert features[threads_index] == pytest.approx(np.log1p(128))

    def test_feature_matrix_and_targets(self):
        samples = make_samples(5)
        matrix = build_feature_matrix(samples)
        targets = build_target_vector(samples)
        assert matrix.shape == (5, NUM_FEATURES)
        assert targets.shape == (5,)
        assert np.all(targets > 0)

    def test_empty_feature_matrix(self):
        assert build_feature_matrix([]).shape == (0, NUM_FEATURES)


class TestCOMPOFFModel:
    def test_fit_predict_shapes(self):
        samples = make_samples(30)
        model = COMPOFFModel(COMPOFFConfig(epochs=30, seed=0))
        history = model.fit(samples)
        assert len(history.train_losses) == 30
        predictions = model.predict(samples[:5])
        assert predictions.shape == (5,)
        assert np.all(predictions >= 0)

    def test_training_loss_decreases(self):
        samples = make_samples(40, seed=1)
        model = COMPOFFModel(COMPOFFConfig(epochs=60, seed=1))
        history = model.fit(samples)
        assert history.train_losses[-1] < history.train_losses[0]

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            COMPOFFModel().predict(make_samples(2))

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            COMPOFFModel().fit([])

    def test_predict_empty_returns_empty(self):
        model = COMPOFFModel(COMPOFFConfig(epochs=5))
        model.fit(make_samples(10))
        assert model.predict([]).shape == (0,)

    def test_learns_size_dependence(self):
        """COMPOFF should at least learn that bigger kernels run longer."""
        samples = make_samples(60, seed=2)
        model = COMPOFFModel(COMPOFFConfig(epochs=150, seed=2))
        model.fit(samples)
        small = [s for s in samples if s.metadata["size"] == 32][:3]
        large = [s for s in samples if s.metadata["size"] == 256][:3]
        if small and large:
            assert model.predict(large).mean() > model.predict(small).mean()
