"""Tests for the hardware specs, noise model and runtime simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.advisor import VariantKind, generate_variant
from repro.hardware import (
    ALL_PLATFORMS,
    EPYC7401,
    MI50,
    NoiseModel,
    POWER9,
    RuntimeSimulator,
    V100,
    analytical_cost_model,
    cpu_platforms,
    get_platform,
    gpu_platforms,
    stable_seed,
)
from repro.kernels import get_kernel


class TestSpecs:
    def test_four_platforms(self):
        assert len(ALL_PLATFORMS) == 4

    def test_two_cpus_two_gpus(self):
        assert len(cpu_platforms()) == 2 and len(gpu_platforms()) == 2

    def test_platform_names_match_paper(self):
        names = {p.name for p in ALL_PLATFORMS}
        assert names == {"IBM POWER9", "NVIDIA V100", "AMD EPYC7401", "AMD MI50"}

    def test_clusters_match_paper(self):
        assert POWER9.cluster == V100.cluster == "Summit"
        assert EPYC7401.cluster == MI50.cluster == "Corona"

    def test_core_counts_match_paper(self):
        assert POWER9.compute_units == 22   # "POWER9 with 22 cores"
        assert EPYC7401.compute_units == 24  # "EPYC 7401 with 24 cores"

    def test_cpu_noise_larger_than_gpu_noise(self):
        assert POWER9.noise_sigma > V100.noise_sigma
        assert EPYC7401.noise_sigma > MI50.noise_sigma

    def test_unit_conversions(self):
        assert V100.peak_flops_per_us == pytest.approx(V100.peak_gflops * 1e3)
        assert V100.memory_bytes_per_us == pytest.approx(V100.memory_bandwidth_gbs * 1e3)

    def test_get_platform_by_alias(self):
        assert get_platform("v100") is V100
        assert get_platform("mi50") is MI50
        assert get_platform("IBM POWER9") is POWER9

    def test_get_platform_unknown_raises(self):
        with pytest.raises(KeyError):
            get_platform("a100")


class TestNoiseModel:
    def test_deterministic_given_seed_parts(self):
        noise = NoiseModel(0.2)
        a = noise.apply(1000.0, "kernel", "v100", 1)
        b = noise.apply(1000.0, "kernel", "v100", 1)
        assert a == b

    def test_different_configurations_get_different_noise(self):
        noise = NoiseModel(0.2)
        assert noise.apply(1000.0, "a") != noise.apply(1000.0, "b")

    def test_zero_sigma_zero_jitter_is_identity(self):
        noise = NoiseModel(0.0, jitter_us=0.0)
        assert noise.apply(1234.5, "x") == 1234.5

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(-0.1)

    def test_negative_runtime_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(0.1).apply(-1.0, "x")

    def test_sample_factors_statistics(self):
        factors = NoiseModel(0.25).sample_factors(4000, seed=0)
        assert np.all(factors > 0)
        assert abs(np.median(factors) - 1.0) < 0.05

    def test_stable_seed_is_stable(self):
        assert stable_seed("a", 1, (2, 3)) == stable_seed("a", 1, (2, 3))
        assert stable_seed("a") != stable_seed("b")

    @given(st.floats(min_value=0.01, max_value=1e7, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_noise_preserves_positivity(self, runtime):
        assert NoiseModel(0.3).apply(runtime, "cfg") > 0


class TestSimulator:
    def gpu_variant(self, kind=VariantKind.GPU_COLLAPSE, sizes=None):
        sizes = sizes or {"N": 256, "M": 256, "K": 256}
        return generate_variant(get_kernel("matmul"), kind, sizes), sizes

    def test_gpu_variant_rejected_on_cpu_platform(self):
        variant, sizes = self.gpu_variant()
        with pytest.raises(ValueError):
            RuntimeSimulator(POWER9).simulate(variant, sizes)

    def test_cpu_variant_rejected_on_gpu_platform(self):
        variant = generate_variant(get_kernel("matmul"), VariantKind.CPU)
        with pytest.raises(ValueError):
            RuntimeSimulator(V100).simulate(variant)

    def test_simulation_breakdown_fields(self):
        variant, sizes = self.gpu_variant()
        result = RuntimeSimulator(V100, noisy=False).simulate(variant, sizes,
                                                              num_teams=128, num_threads=64)
        assert result.runtime_us > 0
        assert result.compute_us > 0 and result.memory_us > 0
        assert result.overhead_us == V100.launch_overhead_us
        assert 0 < result.occupancy <= 1.0
        assert result.noiseless_us == pytest.approx(result.runtime_us)

    def test_noiseless_simulation_is_deterministic(self):
        variant, sizes = self.gpu_variant()
        simulator = RuntimeSimulator(V100, noisy=False)
        assert simulator.measure(variant, sizes) == simulator.measure(variant, sizes)

    def test_noisy_simulation_is_reproducible(self):
        variant, sizes = self.gpu_variant()
        a = RuntimeSimulator(V100).measure(variant, sizes, repetition=0)
        b = RuntimeSimulator(V100).measure(variant, sizes, repetition=0)
        c = RuntimeSimulator(V100).measure(variant, sizes, repetition=1)
        assert a == b
        assert a != c

    def test_runtime_grows_with_problem_size(self):
        simulator = RuntimeSimulator(V100, noisy=False)
        small_variant, small = self.gpu_variant(sizes={"N": 64, "M": 64, "K": 64})
        large_variant, large = self.gpu_variant(sizes={"N": 512, "M": 512, "K": 512})
        assert simulator.measure(large_variant, large) > simulator.measure(small_variant, small)

    def test_mem_variant_slower_than_resident_variant(self):
        simulator = RuntimeSimulator(V100, noisy=False)
        resident, sizes = self.gpu_variant(VariantKind.GPU_COLLAPSE)
        with_mem, _ = self.gpu_variant(VariantKind.GPU_COLLAPSE_MEM)
        assert simulator.measure(with_mem, sizes) > simulator.measure(resident, sizes)

    def test_transfer_time_zero_for_resident_variant(self):
        variant, sizes = self.gpu_variant(VariantKind.GPU)
        result = RuntimeSimulator(V100, noisy=False).simulate(variant, sizes)
        assert result.transfer_us == 0.0

    def test_collapse_improves_occupancy_for_nested_kernel(self):
        simulator = RuntimeSimulator(V100, noisy=False)
        flat, sizes = self.gpu_variant(VariantKind.GPU, {"N": 512, "M": 512, "K": 512})
        collapsed, _ = self.gpu_variant(VariantKind.GPU_COLLAPSE, {"N": 512, "M": 512, "K": 512})
        occ_flat = simulator.simulate(flat, sizes, num_teams=128, num_threads=128).occupancy
        occ_collapsed = simulator.simulate(collapsed, sizes, num_teams=128, num_threads=128).occupancy
        assert occ_collapsed > occ_flat

    def test_more_cpu_threads_is_faster(self):
        variant = generate_variant(get_kernel("correlation"), VariantKind.CPU,
                                   {"N": 512, "M": 128})
        simulator = RuntimeSimulator(EPYC7401, noisy=False)
        slow = simulator.measure(variant, {"N": 512, "M": 128}, num_threads=1)
        fast = simulator.measure(variant, {"N": 512, "M": 128}, num_threads=24)
        assert fast < slow

    def test_gpu_wins_large_parallel_kernel_cpu_wins_tiny_kernel(self):
        """The crossover behaviour the dataset must expose to the GNN."""
        sizes_large = {"N": 1024, "M": 1024, "K": 1024}
        sizes_tiny = {"N": 8, "M": 8, "K": 8}
        cpu_sim = RuntimeSimulator(POWER9, noisy=False)
        gpu_sim = RuntimeSimulator(V100, noisy=False)
        cpu_variant = generate_variant(get_kernel("matmul"), VariantKind.CPU_COLLAPSE)
        gpu_variant = generate_variant(get_kernel("matmul"), VariantKind.GPU_COLLAPSE)
        # large kernel: GPU should be clearly faster
        assert gpu_sim.measure(gpu_variant, sizes_large, num_teams=256, num_threads=256) < \
            cpu_sim.measure(cpu_variant, sizes_large, num_threads=22)
        # tiny kernel: CPU avoids the launch overhead and wins
        assert cpu_sim.measure(cpu_variant, sizes_tiny, num_threads=22) < \
            gpu_sim.measure(gpu_variant, sizes_tiny, num_teams=256, num_threads=256)

    def test_cost_model_callable_signature(self):
        cost = analytical_cost_model(MI50)
        variant, sizes = self.gpu_variant()
        value = cost(variant, sizes, 128, 64)
        assert value > 0

    @pytest.mark.parametrize("platform", ALL_PLATFORMS, ids=lambda p: p.name)
    def test_every_platform_simulates_every_compatible_kernel(self, platform):
        from repro.kernels import all_kernels

        simulator = RuntimeSimulator(platform, noisy=False)
        kind = VariantKind.GPU if platform.is_gpu else VariantKind.CPU
        for kernel in all_kernels()[:6]:
            variant = generate_variant(kernel, kind)
            assert simulator.measure(variant) > 0
