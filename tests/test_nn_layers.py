"""Tests for Module bookkeeping, layers, losses and optimizers."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Adam,
    Dropout,
    Embedding,
    HuberLoss,
    Linear,
    MAELoss,
    MSELoss,
    Module,
    Parameter,
    ReLU,
    SGD,
    Sequential,
    Tensor,
)


class TestModule:
    def test_parameters_collected_recursively(self):
        model = Sequential(Linear(4, 8), ReLU(), Linear(8, 2))
        names = [name for name, _ in model.named_parameters()]
        assert len(names) == 4  # two weights + two biases
        assert any("layer0" in name for name in names)

    def test_num_parameters(self):
        layer = Linear(4, 8)
        assert layer.num_parameters() == 4 * 8 + 8

    def test_zero_grad_clears(self):
        layer = Linear(3, 3)
        out = layer(Tensor(np.ones((2, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5), Linear(2, 2))
        model.eval()
        assert not model.layers[0].training
        model.train()
        assert model.layers[0].training

    def test_state_dict_round_trip(self):
        a = Linear(3, 2, rng=np.random.default_rng(0))
        b = Linear(3, 2, rng=np.random.default_rng(1))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_load_state_dict_shape_mismatch_raises(self):
        a = Linear(3, 2)
        state = a.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_load_state_dict_missing_key_raises(self):
        a = Linear(3, 2)
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": np.zeros((3, 2))})


class TestLayers:
    def test_linear_output_shape(self):
        layer = Linear(5, 7)
        assert layer(Tensor(np.ones((3, 5)))).shape == (3, 7)

    def test_linear_without_bias(self):
        layer = Linear(5, 7, bias=False)
        assert layer.bias is None
        assert layer(Tensor(np.zeros((2, 5)))).data.sum() == 0.0

    def test_linear_matches_manual_affine(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(4, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_mlp_structure_and_shape(self):
        mlp = MLP(6, (16, 8), 1, rng=np.random.default_rng(0))
        out = mlp(Tensor(np.ones((5, 6))))
        assert out.shape == (5, 1)

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_dropout_eval_identity(self):
        layer = Dropout(0.9)
        layer.eval()
        x = Tensor(np.ones(50))
        np.testing.assert_allclose(layer(x).data, 1.0)

    def test_embedding_lookup(self):
        table = Embedding(10, 4, rng=np.random.default_rng(0))
        out = table(np.array([1, 1, 3]))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.data[0], out.data[1])

    def test_embedding_out_of_range_raises(self):
        table = Embedding(5, 2)
        with pytest.raises(IndexError):
            table(np.array([7]))

    def test_sequential_applies_in_order(self):
        model = Sequential(Linear(2, 2, rng=np.random.default_rng(0)), ReLU())
        out = model(Tensor(np.array([[-10.0, -10.0]])))
        assert np.all(out.data >= 0)


class TestLosses:
    def test_mse_value(self):
        loss = MSELoss()(Tensor([1.0, 2.0]), Tensor([3.0, 2.0]))
        assert loss.item() == pytest.approx(2.0)

    def test_mae_value(self):
        loss = MAELoss()(Tensor([1.0, 2.0]), Tensor([3.0, 2.0]))
        assert loss.item() == pytest.approx(1.0)

    def test_huber_below_delta_matches_half_mse(self):
        p, t = Tensor([0.5]), Tensor([0.0])
        assert HuberLoss(delta=1.0)(p, t).item() == pytest.approx(0.125)

    def test_losses_are_non_negative(self):
        rng = np.random.default_rng(0)
        p, t = Tensor(rng.normal(size=20)), Tensor(rng.normal(size=20))
        for loss_fn in (MSELoss(), MAELoss(), HuberLoss()):
            assert loss_fn(p, t).item() >= 0


class TestOptimizers:
    def _quadratic_problem(self):
        target = np.array([3.0, -2.0, 0.5])
        weight = Parameter(np.zeros(3))
        return weight, target

    def test_sgd_converges_on_quadratic(self):
        weight, target = self._quadratic_problem()
        optimizer = SGD([weight], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            loss = ((weight - Tensor(target)) ** 2.0).sum()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(weight.data, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        weight, target = self._quadratic_problem()
        optimizer = SGD([weight], lr=0.05, momentum=0.9)
        for _ in range(200):
            optimizer.zero_grad()
            ((weight - Tensor(target)) ** 2.0).sum().backward()
            optimizer.step()
        np.testing.assert_allclose(weight.data, target, atol=1e-2)

    def test_adam_converges_on_quadratic(self):
        weight, target = self._quadratic_problem()
        optimizer = Adam([weight], lr=0.05)
        for _ in range(400):
            optimizer.zero_grad()
            ((weight - Tensor(target)) ** 2.0).sum().backward()
            optimizer.step()
        np.testing.assert_allclose(weight.data, target, atol=1e-2)

    def test_weight_decay_shrinks_parameters(self):
        weight = Parameter(np.ones(4) * 10.0)
        optimizer = SGD([weight], lr=0.1, weight_decay=0.5)
        for _ in range(50):
            optimizer.zero_grad()
            (weight * 0.0).sum().backward()
            optimizer.step()
        assert np.all(np.abs(weight.data) < 10.0)

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_mlp_fits_linear_function(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 3))
        y = x @ np.array([1.0, -2.0, 0.5]) + 0.3
        model = MLP(3, (16,), 1, rng=rng)
        optimizer = Adam(model.parameters(), lr=1e-2)
        loss_fn = MSELoss()
        for _ in range(300):
            optimizer.zero_grad()
            prediction = model(Tensor(x)).reshape(-1)
            loss = loss_fn(prediction, Tensor(y))
            loss.backward()
            optimizer.step()
        assert loss.item() < 0.01
