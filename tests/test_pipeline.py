"""Tests for the end-to-end data pipeline (configurations, graphs, runtimes,
datasets, workflow)."""

import numpy as np
import pytest

from repro.advisor import VariantKind
from repro.hardware import EPYC7401, MI50, POWER9, V100
from repro.kernels import get_kernel
from repro.ml.trainer import TrainingConfig
from repro.paragraph import EdgeType, GraphEncoder, GraphVariant
from repro.pipeline import (
    Configuration,
    DatasetBuilder,
    RuntimeCollector,
    SweepConfig,
    WorkflowConfig,
    drop_application,
    encode_configuration,
    filter_for_platform,
    generate_configurations,
    generate_paragraph,
    run_workflow,
    scale_sizes,
    table2_statistics,
)

SMALL_KERNELS = [get_kernel("matmul"), get_kernel("matvec"), get_kernel("pf_normalize")]
SMALL_SWEEP = SweepConfig(size_scales=(1.0,), team_counts=(64,), thread_counts=(8,),
                          kernels=SMALL_KERNELS)


class TestConfigurationSweep:
    def test_configuration_count(self):
        configs = generate_configurations(SMALL_SWEEP)
        # matmul: 6 variants, matvec: 3, pf_normalize: 3  => 12 configs
        assert len(configs) == 12

    def test_scales_multiply_configurations(self):
        sweep = SweepConfig(size_scales=(0.5, 1.0), team_counts=(64,), thread_counts=(8,),
                            kernels=[get_kernel("matvec")])
        assert len(generate_configurations(sweep)) == 6

    def test_scale_sizes_respects_floor_and_small_dims(self):
        scaled = scale_sizes(get_kernel("knn_distance"), 0.001, minimum=4)
        assert scaled["N"] == 66 or scaled["N"] >= 4
        assert scaled["D"] == 2          # tiny dimension left untouched

    def test_filter_for_platform(self):
        configs = generate_configurations(SMALL_SWEEP)
        gpu_configs = filter_for_platform(configs, is_gpu=True)
        cpu_configs = filter_for_platform(configs, is_gpu=False)
        assert len(gpu_configs) + len(cpu_configs) == len(configs)
        assert all(c.variant.is_gpu for c in gpu_configs)

    def test_configuration_metadata(self):
        config = generate_configurations(SMALL_SWEEP)[0]
        metadata = config.metadata
        assert {"application", "kernel", "variant", "num_teams", "num_threads",
                "sizes", "is_gpu", "collapse", "repetition"} <= set(metadata)

    def test_configuration_name_is_unique(self):
        configs = generate_configurations(SMALL_SWEEP)
        names = [c.name for c in configs]
        assert len(names) == len(set(names))

    def test_repetitions_add_configurations(self):
        sweep = SweepConfig(size_scales=(1.0,), team_counts=(64,), thread_counts=(8,),
                            kernels=[get_kernel("matvec")], repetitions=3)
        assert len(generate_configurations(sweep)) == 9


class TestGraphGeneration:
    def configuration(self, kind=VariantKind.GPU_COLLAPSE):
        from repro.advisor import generate_variant

        kernel = get_kernel("matmul")
        sizes = {"N": 64, "M": 64, "K": 64}
        return Configuration(generate_variant(kernel, kind, sizes), sizes, 64, 32)

    def test_generated_graph_contains_omp_directive_node(self):
        graph = generate_paragraph(self.configuration())
        assert "OMPTargetTeamsDistributeParallelForDirective" in graph.node_labels()

    def test_generated_graph_validates(self):
        generate_paragraph(self.configuration()).validate()

    def test_graph_weights_reflect_problem_size(self):
        small = generate_paragraph(self.configuration())
        config = self.configuration()
        large_sizes = {"N": 128, "M": 128, "K": 128}
        large_config = Configuration(config.variant, large_sizes, 64, 32)
        large = generate_paragraph(large_config)
        assert max(e.weight for e in large.edges_of_type(EdgeType.CHILD)) > \
            max(e.weight for e in small.edges_of_type(EdgeType.CHILD))

    def test_raw_ast_variant_graph(self):
        graph = generate_paragraph(self.configuration(), GraphVariant.RAW_AST)
        assert graph.edge_type_counts()[EdgeType.NEXT_TOKEN] == 0

    def test_encode_configuration_attaches_metadata_and_target(self):
        encoder = GraphEncoder()
        sample = encode_configuration(self.configuration(), encoder, runtime_us=123.0,
                                      platform_name="NVIDIA V100")
        assert sample.target == 123.0
        assert sample.metadata["platform"] == "NVIDIA V100"
        assert sample.aux_features.tolist() == [64.0, 32.0]


class TestRuntimeCollection:
    def test_collector_skips_incompatible_variants(self):
        configs = generate_configurations(SMALL_SWEEP)
        collector = RuntimeCollector(POWER9)
        measurements = collector.collect(configs)
        assert all(not m.configuration.variant.is_gpu for m in measurements)
        assert len(measurements) == len(filter_for_platform(configs, is_gpu=False))

    def test_collect_one_returns_none_for_wrong_platform(self):
        gpu_config = filter_for_platform(generate_configurations(SMALL_SWEEP), True)[0]
        assert RuntimeCollector(EPYC7401).collect_one(gpu_config) is None

    def test_failure_filter_drops_and_records(self):
        configs = generate_configurations(SweepConfig(
            size_scales=(1.0,), team_counts=(64,), thread_counts=(8,),
            kernels=[get_kernel("matmul"), get_kernel("laplace_sweep")]))
        collector = RuntimeCollector(MI50, failure_filter=drop_application("Laplace"))
        measurements = collector.collect(configs)
        assert all(m.configuration.kernel.application != "Laplace" for m in measurements)
        assert collector.failed and all(c.kernel.application == "Laplace"
                                        for c in collector.failed)

    def test_measurements_are_positive(self):
        measurements = RuntimeCollector(V100).collect(generate_configurations(SMALL_SWEEP))
        assert all(m.runtime_us > 0 for m in measurements)


class TestDatasetBuilder:
    def test_build_per_platform_counts(self):
        builder = DatasetBuilder(platforms=(V100, POWER9))
        result = builder.build(SMALL_SWEEP)
        configs = generate_configurations(SMALL_SWEEP)
        assert len(result.datasets["NVIDIA V100"]) == len(filter_for_platform(configs, True))
        assert len(result.datasets["IBM POWER9"]) == len(filter_for_platform(configs, False))

    def test_table2_statistics_shape(self):
        result = DatasetBuilder(platforms=(V100,)).build(SMALL_SWEEP)
        rows = table2_statistics(result)
        assert len(rows) == 1
        assert {"platform", "data_points", "runtime_min_ms", "runtime_max_ms",
                "std_dev_ms"} <= set(rows[0])

    def test_failure_filter_reduces_one_platform_only(self):
        sweep = SweepConfig(size_scales=(1.0,), team_counts=(64,), thread_counts=(8,),
                            kernels=[get_kernel("matmul"), get_kernel("laplace_copy")])
        builder = DatasetBuilder(
            platforms=(V100, MI50),
            failure_filters={MI50.name: drop_application("Laplace")})
        result = builder.build(sweep)
        assert len(result.datasets[MI50.name]) < len(result.datasets[V100.name])
        assert result.dropped[MI50.name] > 0

    def test_samples_carry_platform_metadata(self):
        result = DatasetBuilder(platforms=(MI50,)).build(SMALL_SWEEP)
        dataset = result.datasets[MI50.name]
        assert all(s.metadata["platform"] == MI50.name for s in dataset)


class TestWorkflow:
    def test_run_workflow_trains_and_reports(self):
        config = WorkflowConfig(
            sweep=SweepConfig(size_scales=(0.5, 1.0), team_counts=(64,), thread_counts=(8, 64),
                              kernels=SMALL_KERNELS),
            training=TrainingConfig(epochs=4, batch_size=16, learning_rate=3e-3, seed=0),
            hidden_dim=12,
        )
        result = run_workflow(config, platforms=(V100,))
        assert "NVIDIA V100" in result.platforms
        platform_result = result.platforms["NVIDIA V100"]
        assert len(platform_result.history) == 4
        metrics = result.metrics_table()["NVIDIA V100"]
        assert metrics["rmse"] > 0 and 0 <= metrics["normalized_rmse"] < 10

    def test_workflow_skips_platform_with_too_few_samples(self):
        config = WorkflowConfig(
            sweep=SweepConfig(size_scales=(1.0,), team_counts=(64,), thread_counts=(8,),
                              kernels=[get_kernel("matvec")],
                              variant_kinds=(VariantKind.GPU,)),
            training=TrainingConfig(epochs=2, batch_size=4, seed=0),
            hidden_dim=8,
        )
        result = run_workflow(config, platforms=(POWER9,))
        assert result.platforms == {}
