"""Parity regressions for the vectorized relational GNN kernels.

The vectorized ``RGATConv`` / ``RGCNConv`` forwards (relation-bucketed edge
layout + stacked projections + fused gather/softmax/scatter) must reproduce
the seed per-relation-loop implementations — kept as ``forward_reference`` —
to float64 precision, for values *and* gradients, across dense and sparse
relation regimes.  Also covers the edge-layout cache and the cached
self-loop helper.
"""

import numpy as np
import pytest

from repro.gnn import (
    EdgeLayoutCache,
    GATConv,
    ParaGraphModel,
    RGATConv,
    RGCNConv,
    RelationalEdgeLayout,
    add_self_loops,
    cached_add_self_loops,
    get_edge_layout,
)
from repro.nn import Tensor


def random_graph(num_nodes, num_edges, num_relations, dim=5, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(num_nodes, dim))
    edge_index = rng.integers(0, num_nodes, size=(2, num_edges))
    edge_type = rng.integers(0, num_relations, size=num_edges)
    edge_weight = rng.random(num_edges)
    return x, edge_index, edge_type, edge_weight


# ``(N, E, R)`` regimes: dense (stacked-einsum path, R*N <= 2E), sparse
# relations (gathered segment-matmul path), single relation, empty relations
REGIMES = [(6, 30, 3), (12, 6, 8), (7, 25, 1), (10, 18, 8)]


class TestRGATParity:
    @pytest.mark.parametrize("num_nodes,num_edges,num_relations", REGIMES)
    @pytest.mark.parametrize("heads", [1, 2])
    def test_forward_matches_reference(self, num_nodes, num_edges, num_relations, heads):
        x_data, ei, et, ew = random_graph(num_nodes, num_edges, num_relations)
        conv = RGATConv(5, 4, num_relations=num_relations, heads=heads,
                        rng=np.random.default_rng(1))
        reference = conv.forward_reference(Tensor(x_data), ei, et, ew)
        vectorized = conv(Tensor(x_data), ei, et, ew)
        np.testing.assert_allclose(vectorized.data, reference.data, atol=1e-9)

    @pytest.mark.parametrize("num_nodes,num_edges,num_relations", REGIMES)
    def test_gradients_match_reference(self, num_nodes, num_edges, num_relations):
        x_data, ei, et, ew = random_graph(num_nodes, num_edges, num_relations)
        conv = RGATConv(5, 3, num_relations=num_relations,
                        rng=np.random.default_rng(2))

        x_ref = Tensor(x_data.copy(), requires_grad=True)
        conv.zero_grad()
        conv.forward_reference(x_ref, ei, et, ew).pow(2.0).sum().backward()
        grads_ref = {name: p.grad.copy() if p.grad is not None else None
                     for name, p in conv.named_parameters()}

        x_vec = Tensor(x_data.copy(), requires_grad=True)
        conv.zero_grad()
        conv(x_vec, ei, et, ew).pow(2.0).sum().backward()

        np.testing.assert_allclose(x_vec.grad, x_ref.grad, atol=1e-9)
        for name, parameter in conv.named_parameters():
            if grads_ref[name] is None:
                assert parameter.grad is None or not parameter.grad.any()
            else:
                np.testing.assert_allclose(parameter.grad, grads_ref[name],
                                           atol=1e-9, err_msg=name)

    def test_empty_edge_list(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 5)))
        conv = RGATConv(5, 3, num_relations=2)
        reference = conv.forward_reference(x, np.zeros((2, 0), dtype=np.int64),
                                           np.zeros(0, dtype=np.int64))
        vectorized = conv(x, np.zeros((2, 0), dtype=np.int64),
                          np.zeros(0, dtype=np.int64))
        np.testing.assert_allclose(vectorized.data, reference.data)

    def test_rejects_bad_relation_index(self):
        x_data, ei, _, ew = random_graph(6, 12, 2)
        conv = RGATConv(5, 3, num_relations=2)
        with pytest.raises(ValueError):
            conv(Tensor(x_data), ei, np.full(ei.shape[1], 5), ew)


class TestRGCNParity:
    @pytest.mark.parametrize("num_nodes,num_edges,num_relations", REGIMES)
    def test_forward_matches_reference(self, num_nodes, num_edges, num_relations):
        x_data, ei, et, ew = random_graph(num_nodes, num_edges, num_relations)
        conv = RGCNConv(5, 4, num_relations=num_relations,
                        rng=np.random.default_rng(3))
        reference = conv.forward_reference(Tensor(x_data), ei, et, ew)
        vectorized = conv(Tensor(x_data), ei, et, ew)
        np.testing.assert_allclose(vectorized.data, reference.data, atol=1e-9)

    def test_gradients_match_reference(self):
        x_data, ei, et, ew = random_graph(8, 20, 4)
        conv = RGCNConv(5, 4, num_relations=4, rng=np.random.default_rng(4))

        x_ref = Tensor(x_data.copy(), requires_grad=True)
        conv.zero_grad()
        conv.forward_reference(x_ref, ei, et, ew).pow(2.0).sum().backward()
        grads_ref = {name: p.grad.copy() if p.grad is not None else None
                     for name, p in conv.named_parameters()}

        x_vec = Tensor(x_data.copy(), requires_grad=True)
        conv.zero_grad()
        conv(x_vec, ei, et, ew).pow(2.0).sum().backward()

        np.testing.assert_allclose(x_vec.grad, x_ref.grad, atol=1e-9)
        for name, parameter in conv.named_parameters():
            if grads_ref[name] is None:
                assert parameter.grad is None or not parameter.grad.any()
            else:
                np.testing.assert_allclose(parameter.grad, grads_ref[name],
                                           atol=1e-9, err_msg=name)


class TestModelParity:
    def test_paragraph_model_forward_matches_reference_convs(self):
        from repro.paragraph.edges import NUM_EDGE_TYPES
        rng = np.random.default_rng(5)
        num_nodes, num_edges, dim = 40, 150, 12
        model = ParaGraphModel(node_feature_dim=dim, hidden_dim=8,
                               num_relations=NUM_EDGE_TYPES, seed=0)
        from repro.paragraph.encoders import GraphBatch
        batch = GraphBatch(
            node_features=rng.normal(size=(num_nodes, dim)),
            edge_index=rng.integers(0, num_nodes, size=(2, num_edges)),
            edge_type=rng.integers(0, NUM_EDGE_TYPES, size=num_edges),
            edge_weight=rng.random(num_edges),
            aux_features=rng.random((2, 2)),
            batch=np.repeat([0, 1], num_nodes // 2),
            targets=np.zeros(2),
            num_graphs=2,
        )
        vectorized = model.predict(batch)

        import types
        for conv in model.convs:
            conv.forward = types.MethodType(RGATConv.forward_reference, conv)
        reference = model.predict(batch)
        np.testing.assert_allclose(vectorized, reference, atol=1e-9)


class TestEdgeLayout:
    def test_layout_blocks_and_offsets(self):
        ei = np.array([[0, 1, 2, 3], [1, 2, 3, 0]])
        et = np.array([2, 0, 2, 1])
        layout = RelationalEdgeLayout.build(ei, et, 4, 3)
        assert layout.offsets.tolist() == [0, 1, 2, 4]
        assert layout.rel.tolist() == [0, 1, 2, 2]
        # stable: relation-2 edges keep their original order
        assert layout.src.tolist() == [1, 3, 0, 2]
        assert list(layout.blocks()) == [(0, 0, 1), (1, 1, 2), (2, 2, 4)]

    def test_sort_reorders_per_edge_arrays(self):
        ei = np.array([[0, 1, 2], [1, 2, 0]])
        et = np.array([1, 0, 1])
        layout = RelationalEdgeLayout.build(ei, et, 3, 2)
        np.testing.assert_array_equal(layout.sort(np.array([10.0, 20.0, 30.0])),
                                      [20.0, 10.0, 30.0])

    def test_validation_happens_in_build(self):
        with pytest.raises(ValueError):
            RelationalEdgeLayout.build(np.array([[0], [9]]), np.array([0]), 3, 2)
        with pytest.raises(ValueError):
            RelationalEdgeLayout.build(np.array([[0], [1]]), np.array([7]), 3, 2)

    def test_cache_hits_on_equal_content(self):
        cache = EdgeLayoutCache(capacity=4)
        ei = np.array([[0, 1], [1, 0]])
        et = np.array([0, 1])
        first = cache.get(ei, et, 2, 2)
        # a distinct array object with equal content must hit
        second = cache.get(ei.copy(), et.copy(), 2, 2)
        assert first is second
        assert cache.info().hits == 1 and cache.info().misses == 1
        # different relation count is a different layout
        cache.get(ei, et, 2, 3)
        assert cache.info().misses == 2

    def test_cache_evicts_lru(self):
        cache = EdgeLayoutCache(capacity=1)
        ei = np.array([[0, 1], [1, 0]])
        cache.get(ei, np.array([0, 0]), 2, 1)
        cache.get(ei, np.array([0, 0]), 2, 2)
        assert cache.info().size == 1

    def test_global_cache_reuses_layouts(self):
        from repro.gnn.edge_layout import edge_layout_cache_info
        ei = np.array([[0, 1, 2], [1, 2, 0]])
        et = np.array([0, 1, 0])
        before = edge_layout_cache_info()
        a = get_edge_layout(ei, et, 3, 2)
        b = get_edge_layout(ei.copy(), et.copy(), 3, 2)
        assert a is b
        assert edge_layout_cache_info().hits >= before.hits + 1


class TestCachedSelfLoops:
    def test_matches_uncached(self):
        ei = np.array([[0, 1], [1, 2]])
        et = np.array([1, 2])
        ew = np.array([0.5, 0.7])
        plain = add_self_loops(ei, 3, edge_type=et, edge_weight=ew)
        cached = cached_add_self_loops(ei, 3, edge_type=et, edge_weight=ew)
        for a, b in zip(plain, cached):
            np.testing.assert_array_equal(a, b)

    def test_repeated_calls_share_arrays(self):
        ei = np.array([[0, 1], [1, 2]])
        first = cached_add_self_loops(ei, 3)
        second = cached_add_self_loops(ei.copy(), 3)
        assert first[0] is second[0]
        assert not first[0].flags.writeable   # shared result is read-only


class TestGATStillWorks:
    def test_gat_accepts_foreign_layout(self):
        x_data, ei, et, ew = random_graph(6, 12, 3)
        gat = GATConv(5, 3, rng=np.random.default_rng(0))
        layout = get_edge_layout(ei, et, 6, 3)
        out = gat(Tensor(x_data), ei, edge_weight=ew, layout=layout)
        np.testing.assert_allclose(
            out.data, gat(Tensor(x_data), ei, edge_weight=ew).data, atol=1e-12)
