"""Tests for the autograd engine: forward values and gradient correctness.

Gradient correctness is checked against central finite differences on random
inputs — the standard way to validate a hand-written backward pass.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor, concatenate, ones, stack, zeros


def numeric_gradient(fn, x, eps=1e-6):
    """Central finite-difference gradient of scalar fn wrt array x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn(x)
        flat[i] = original - eps
        lower = fn(x)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * eps)
    return grad


def check_gradient(build_loss, shape, seed=0, atol=1e-5):
    """Compare autograd gradient to the finite-difference gradient."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=shape)
    tensor = Tensor(data.copy(), requires_grad=True)
    loss = build_loss(tensor)
    loss.backward()
    numeric = numeric_gradient(lambda x: build_loss(Tensor(x)).item(), data.copy())
    assert tensor.grad is not None
    np.testing.assert_allclose(tensor.grad, numeric, atol=atol, rtol=1e-4)


class TestForwardValues:
    def test_addition_broadcasting(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.array([1.0, 2.0, 3.0]))
        assert (a + b).data.tolist() == [[2, 3, 4], [2, 3, 4]]

    def test_scalar_operations(self):
        t = Tensor([1.0, 2.0])
        assert ((t * 2 + 1) / 2).data.tolist() == [1.5, 2.5]

    def test_matmul(self):
        a = Tensor(np.arange(6).reshape(2, 3))
        b = Tensor(np.arange(12).reshape(3, 4))
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)

    def test_relu_clamps_negative(self):
        assert Tensor([-1.0, 2.0]).relu().data.tolist() == [0.0, 2.0]

    def test_sigmoid_range(self):
        values = Tensor(np.linspace(-10, 10, 21)).sigmoid().data
        assert np.all(values > 0) and np.all(values < 1)

    def test_sum_and_mean(self):
        t = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        assert t.sum().item() == 15.0
        assert t.mean().item() == pytest.approx(2.5)

    def test_sum_axis_keepdims(self):
        t = Tensor(np.ones((2, 3)))
        assert t.sum(axis=0).shape == (3,)
        assert t.sum(axis=0, keepdims=True).shape == (1, 3)

    def test_max_reduction(self):
        t = Tensor([[1.0, 5.0], [3.0, 2.0]])
        assert t.max().item() == 5.0
        assert t.max(axis=1).data.tolist() == [5.0, 3.0]

    def test_reshape_and_transpose(self):
        t = Tensor(np.arange(6, dtype=float))
        assert t.reshape(2, 3).shape == (2, 3)
        assert t.reshape(2, 3).T.shape == (3, 2)

    def test_getitem(self):
        t = Tensor(np.arange(10, dtype=float))
        assert t[2:5].data.tolist() == [2.0, 3.0, 4.0]

    def test_index_select(self):
        t = Tensor(np.arange(12, dtype=float).reshape(4, 3))
        picked = t.index_select(np.array([2, 0, 2]))
        assert picked.shape == (3, 3)
        assert picked.data[0].tolist() == [6.0, 7.0, 8.0]

    def test_scatter_add_forward(self):
        t = Tensor(np.ones((4, 2)))
        out = t.scatter_add(np.array([0, 1, 0, 1]), 2)
        assert out.data.tolist() == [[2.0, 2.0], [2.0, 2.0]]

    def test_concatenate_and_stack(self):
        a, b = Tensor(np.ones((2, 2))), Tensor(np.zeros((2, 2)))
        assert concatenate([a, b], axis=0).shape == (4, 2)
        assert stack([a, b], axis=0).shape == (2, 2, 2)

    def test_zeros_ones_helpers(self):
        assert zeros((2, 2)).data.sum() == 0
        assert ones((2, 2)).data.sum() == 4

    def test_detach_stops_gradients(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad

    def test_clip(self):
        t = Tensor([-2.0, 0.5, 3.0])
        assert t.clip(0.0, 1.0).data.tolist() == [0.0, 0.5, 1.0]


class TestGradients:
    def test_add_mul_chain(self):
        check_gradient(lambda x: ((x * 3.0 + 2.0) * x).sum(), (4, 3))

    def test_matmul_left(self):
        rng = np.random.default_rng(1)
        w = rng.normal(size=(3, 5))
        check_gradient(lambda x: (x @ Tensor(w)).sum(), (4, 3))

    def test_matmul_right(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(4, 3))
        check_gradient(lambda x: (Tensor(a) @ x).pow(2.0).sum(), (3, 5))

    def test_division(self):
        check_gradient(lambda x: (1.0 / (x * x + 2.0)).sum(), (3, 3))

    def test_exp_log(self):
        check_gradient(lambda x: (x.exp() + (x * x + 1.0).log()).sum(), (5,))

    def test_relu(self):
        check_gradient(lambda x: (x.relu() * x.relu()).sum(), (10,), seed=3)

    def test_leaky_relu(self):
        check_gradient(lambda x: x.leaky_relu(0.1).pow(2.0).sum(), (10,), seed=4)

    def test_sigmoid_tanh(self):
        check_gradient(lambda x: (x.sigmoid() + x.tanh()).sum(), (6,))

    def test_mean_reduction(self):
        check_gradient(lambda x: x.mean(), (4, 4))

    def test_sum_axis(self):
        check_gradient(lambda x: x.sum(axis=1).pow(2.0).sum(), (3, 4))

    def test_broadcast_add_gradient(self):
        rng = np.random.default_rng(5)
        b = rng.normal(size=(1, 4))
        check_gradient(lambda x: (x + Tensor(b)).pow(2.0).sum(), (3, 4))

    def test_broadcast_bias_gradient(self):
        rng = np.random.default_rng(6)
        a = rng.normal(size=(3, 4))

        def loss(bias):
            return (Tensor(a) + bias).pow(2.0).sum()

        check_gradient(loss, (4,))

    def test_reshape_transpose_gradient(self):
        check_gradient(lambda x: x.reshape(6, 2).transpose().pow(2.0).sum(), (3, 4))

    def test_index_select_gradient(self):
        idx = np.array([0, 2, 2, 1])
        check_gradient(lambda x: x.index_select(idx).pow(2.0).sum(), (4, 3))

    def test_scatter_add_gradient(self):
        seg = np.array([0, 1, 0, 2, 1])
        check_gradient(lambda x: x.scatter_add(seg, 3).pow(2.0).sum(), (5, 2))

    def test_concatenate_gradient(self):
        rng = np.random.default_rng(7)
        other = rng.normal(size=(2, 3))
        check_gradient(
            lambda x: concatenate([x, Tensor(other)], axis=0).pow(2.0).sum(), (2, 3))

    def test_getitem_gradient(self):
        check_gradient(lambda x: x[1:3].pow(2.0).sum(), (5, 2))

    def test_abs_gradient(self):
        check_gradient(lambda x: x.abs().sum(), (6,), seed=11)

    def test_gradient_accumulates_across_uses(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        assert x.grad[0] == pytest.approx(7.0)

    def test_no_grad_tracking_without_requires_grad(self):
        x = Tensor([1.0, 2.0])
        y = (x * 2).sum()
        y.backward()
        assert x.grad is None

    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_mse_gradient_matches_analytic(self, rows, cols):
        rng = np.random.default_rng(rows * 10 + cols)
        prediction = rng.normal(size=(rows, cols))
        target = rng.normal(size=(rows, cols))
        p = Tensor(prediction, requires_grad=True)
        loss = F.mse_loss(p, Tensor(target))
        loss.backward()
        analytic = 2.0 * (prediction - target) / prediction.size
        np.testing.assert_allclose(p.grad, analytic, atol=1e-10)


class TestFunctional:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 7)))
        out = F.softmax(x, axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), 1.0)

    def test_softmax_invariant_to_shift(self):
        x = np.random.default_rng(1).normal(size=(3, 5))
        a = F.softmax(Tensor(x), axis=1).data
        b = F.softmax(Tensor(x + 100.0), axis=1).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_segment_softmax_sums_to_one_per_segment(self):
        logits = Tensor(np.random.default_rng(2).normal(size=8), requires_grad=True)
        seg = np.array([0, 0, 1, 1, 1, 2, 2, 2])
        out = F.segment_softmax(logits, seg, 3)
        sums = np.zeros(3)
        np.add.at(sums, seg, out.data)
        np.testing.assert_allclose(sums, 1.0)

    def test_segment_softmax_multihead(self):
        logits = Tensor(np.random.default_rng(3).normal(size=(6, 2)))
        seg = np.array([0, 0, 0, 1, 1, 1])
        out = F.segment_softmax(logits, seg, 2)
        sums = np.zeros((2, 2))
        np.add.at(sums, seg, out.data)
        np.testing.assert_allclose(sums, 1.0)

    def test_segment_softmax_gradient(self):
        seg = np.array([0, 0, 1, 1])

        def loss(x):
            return (F.segment_softmax(x, seg, 2) * Tensor(np.array([1.0, 2.0, 3.0, 4.0]))).sum()

        rng = np.random.default_rng(4)
        data = rng.normal(size=4)
        x = Tensor(data.copy(), requires_grad=True)
        out = loss(x)
        out.backward()
        numeric = numeric_gradient(lambda arr: loss(Tensor(arr)).item(), data.copy())
        np.testing.assert_allclose(x.grad, numeric, atol=1e-6)

    def test_segment_mean_handles_empty_segment(self):
        values = Tensor(np.ones((3, 2)))
        out = F.segment_mean(values, np.array([0, 0, 2]), 4)
        np.testing.assert_allclose(out.data[1], 0.0)
        np.testing.assert_allclose(out.data[0], 1.0)

    def test_dropout_eval_is_identity(self):
        x = Tensor(np.ones(100))
        assert np.array_equal(F.dropout(x, 0.5, training=False).data, x.data)

    def test_dropout_train_scales_survivors(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(10000))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        survivors = out.data[out.data > 0]
        assert np.allclose(survivors, 2.0)
        assert 0.4 < (out.data > 0).mean() < 0.6

    def test_mae_and_huber_losses(self):
        p = Tensor([1.0, 2.0, 3.0])
        t = Tensor([1.0, 4.0, 3.0])
        assert F.mae_loss(p, t).item() == pytest.approx(2.0 / 3.0)
        assert F.huber_loss(p, t, delta=1.0).item() > 0
