"""Tests for the ParaGraph container, edge vocabulary and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paragraph.edges import (
    AUGMENTATION_EDGE_TYPES,
    Edge,
    EdgeType,
    NUM_EDGE_TYPES,
)
from repro.paragraph.graph import ParaGraph


class TestEdgeType:
    def test_eight_edge_types(self):
        assert NUM_EDGE_TYPES == 8

    def test_child_is_type_zero(self):
        assert int(EdgeType.CHILD) == 0

    def test_display_names_match_paper(self):
        names = {t.display_name for t in EdgeType}
        assert names == {"Child", "NextToken", "NextSib", "Ref",
                         "ForExec", "ForNext", "ConTrue", "ConFalse"}

    def test_augmentation_edges_exclude_child(self):
        assert EdgeType.CHILD not in AUGMENTATION_EDGE_TYPES
        assert len(AUGMENTATION_EDGE_TYPES) == 7

    def test_edge_tuple_round_trip(self):
        edge = Edge(1, 2, EdgeType.REF, 0.0)
        assert edge.as_tuple() == (1, 2, int(EdgeType.REF), 0.0)


def small_graph():
    graph = ParaGraph(name="toy")
    a = graph.add_node("CompoundStmt")
    b = graph.add_node("BinaryOperator", spelling="=")
    c = graph.add_node("IntegerLiteral", spelling="5", is_terminal=True)
    graph.add_edge(a, b, EdgeType.CHILD, 1.0)
    graph.add_edge(b, c, EdgeType.CHILD, 2.0)
    graph.add_edge(c, c, EdgeType.NEXT_TOKEN)
    return graph


class TestParaGraphContainer:
    def test_node_ids_consecutive(self):
        graph = small_graph()
        assert [n.node_id for n in graph.nodes] == [0, 1, 2]

    def test_num_nodes_and_edges(self):
        graph = small_graph()
        assert graph.num_nodes == 3 and graph.num_edges == 3

    def test_non_child_edge_weight_forced_to_zero(self):
        graph = ParaGraph()
        a, b = graph.add_node("A"), graph.add_node("B")
        edge = graph.add_edge(a, b, EdgeType.REF, weight=5.0)
        assert edge.weight == 0.0

    def test_dangling_edge_raises(self):
        graph = ParaGraph()
        graph.add_node("A")
        with pytest.raises(IndexError):
            graph.add_edge(0, 99, EdgeType.CHILD, 1.0)

    def test_edges_of_type(self):
        graph = small_graph()
        assert len(graph.edges_of_type(EdgeType.CHILD)) == 2
        assert len(graph.edges_of_type(EdgeType.NEXT_TOKEN)) == 1

    def test_edge_type_counts_covers_all_types(self):
        counts = small_graph().edge_type_counts()
        assert set(counts) == set(EdgeType)
        assert counts[EdgeType.CHILD] == 2

    def test_in_and_out_edges(self):
        graph = small_graph()
        assert len(graph.out_edges(1)) == 1
        assert len(graph.in_edges(1)) == 1

    def test_edge_index_shape(self):
        index = small_graph().edge_index()
        assert index.shape == (2, 3)
        assert index.dtype == np.int64

    def test_empty_graph_edge_index(self):
        assert ParaGraph().edge_index().shape == (2, 0)

    def test_edge_types_and_weights_arrays(self):
        graph = small_graph()
        assert graph.edge_types().tolist() == [0, 0, int(EdgeType.NEXT_TOKEN)]
        assert graph.edge_weights().tolist() == [1.0, 2.0, 0.0]

    def test_adjacency_matrix(self):
        matrix = small_graph().adjacency_matrix()
        assert matrix.shape == (3, 3)
        assert matrix[0, 1] == 1.0 and matrix[1, 0] == 0.0

    def test_adjacency_matrix_filtered_by_type(self):
        matrix = small_graph().adjacency_matrix(EdgeType.NEXT_TOKEN)
        assert matrix.sum() == 1.0

    def test_to_networkx(self):
        nx_graph = small_graph().to_networkx()
        assert nx_graph.number_of_nodes() == 3
        assert nx_graph.number_of_edges() == 3
        labels = {data["label"] for _, data in nx_graph.nodes(data=True)}
        assert "CompoundStmt" in labels

    def test_validate_accepts_well_formed(self):
        small_graph().validate()

    def test_validate_rejects_zero_weight_child_edge(self):
        graph = ParaGraph()
        a, b = graph.add_node("A"), graph.add_node("B")
        graph.edges.append(Edge(a, b, EdgeType.CHILD, 0.0))
        with pytest.raises(ValueError):
            graph.validate()

    def test_validate_rejects_weighted_non_child_edge(self):
        graph = ParaGraph()
        a, b = graph.add_node("A"), graph.add_node("B")
        graph.edges.append(Edge(a, b, EdgeType.REF, 3.0))
        with pytest.raises(ValueError):
            graph.validate()

    def test_summary_mentions_counts(self):
        text = small_graph().summary()
        assert "3 nodes" in text and "Child=2" in text

    def test_node_id_for_ast_node(self):
        from repro.clang import parse_snippet

        ast = parse_snippet("x = 1;")
        graph = ParaGraph()
        node_id = graph.add_node("CompoundStmt", ast_node=ast)
        assert graph.node_id_for(ast) == node_id

    @given(st.integers(1, 30), st.integers(0, 60))
    @settings(max_examples=30, deadline=None)
    def test_random_graph_exports_are_consistent(self, num_nodes, num_edges):
        rng = np.random.default_rng(num_nodes * 1000 + num_edges)
        graph = ParaGraph()
        for i in range(num_nodes):
            graph.add_node(f"Kind{i % 5}")
        for _ in range(num_edges):
            src, dst = rng.integers(0, num_nodes, size=2)
            edge_type = EdgeType(int(rng.integers(0, NUM_EDGE_TYPES)))
            weight = float(rng.random() + 0.1) if edge_type is EdgeType.CHILD else 0.0
            graph.add_edge(int(src), int(dst), edge_type, weight)
        graph.validate()
        assert graph.edge_index().shape == (2, num_edges)
        assert graph.edge_types().shape == (num_edges,)
        assert graph.edge_weights().shape == (num_edges,)
        assert graph.to_networkx().number_of_edges() == num_edges
