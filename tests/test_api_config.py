"""Tests for ReproConfig validation and dict round-tripping."""

import pytest

from repro.advisor import VariantKind
from repro.api import (
    DataConfig,
    GraphConfig,
    ModelConfig,
    ReproConfig,
    config_from_dict,
    config_to_dict,
)
from repro.hardware import V100
from repro.kernels import get_kernel
from repro.ml.trainer import TrainingConfig
from repro.paragraph import GraphVariant
from repro.pipeline import SweepConfig, WorkflowConfig


class TestValidation:
    def test_defaults_are_valid(self):
        config = ReproConfig()
        assert config.graph.variant is GraphVariant.PARAGRAPH
        assert len(config.platform_specs()) == 4

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.5, 1.5])
    def test_train_fraction_must_be_in_open_unit_interval(self, fraction):
        with pytest.raises(ValueError, match="train_fraction"):
            ReproConfig(train_fraction=fraction)
        with pytest.raises(ValueError, match="train_fraction"):
            WorkflowConfig(train_fraction=fraction)

    def test_unknown_conv_lists_registry_keys(self):
        with pytest.raises(ValueError, match=r"unknown convolution.*rgat"):
            ModelConfig(conv="transformer")
        with pytest.raises(ValueError, match=r"unknown convolution.*rgat"):
            WorkflowConfig(conv="transformer")

    def test_unknown_graph_variant_lists_valid_names(self):
        with pytest.raises(ValueError, match=r"unknown graph variant.*paragraph"):
            GraphConfig(variant="super_ast")
        with pytest.raises(ValueError, match=r"unknown graph variant.*paragraph"):
            WorkflowConfig(graph_variant="super_ast")

    def test_graph_variant_strings_are_coerced(self):
        assert GraphConfig(variant="raw_ast").variant is GraphVariant.RAW_AST
        assert WorkflowConfig(graph_variant="raw_ast").graph_variant \
            is GraphVariant.RAW_AST

    def test_unknown_platform_rejected_with_known_names(self):
        with pytest.raises(ValueError, match=r"unknown platform.*V100"):
            DataConfig(platforms=("h100",))

    def test_model_bounds(self):
        with pytest.raises(ValueError, match="hidden_dim"):
            ModelConfig(hidden_dim=0)
        with pytest.raises(ValueError, match="dropout"):
            ModelConfig(dropout=1.0)
        with pytest.raises(ValueError, match="readout"):
            ModelConfig(readout="attention")

    def test_platform_spec_objects_pass_through(self):
        config = DataConfig(platforms=(V100, "power9"))
        specs = config.platform_specs()
        assert specs[0] is V100
        assert specs[1].name == "IBM POWER9"


class TestDictRoundTrip:
    def config(self) -> ReproConfig:
        return ReproConfig(
            data=DataConfig(
                sweep=SweepConfig(size_scales=(0.5, 2.0), team_counts=(32,),
                                  thread_counts=(8,), repetitions=2,
                                  variant_kinds=(VariantKind.GPU,
                                                 VariantKind.GPU_MEM),
                                  kernels=[get_kernel("matmul"),
                                           get_kernel("transpose")]),
                platforms=("v100", "mi50"),
                noisy_runtimes=False,
            ),
            graph=GraphConfig(variant="augmented_ast", default_trip_count=8),
            model=ModelConfig(hidden_dim=16, conv="rgcn", readout="mean"),
            training=TrainingConfig(epochs=7, batch_size=4, learning_rate=5e-3),
            train_fraction=0.8,
            seed=3,
        )

    def test_round_trip_is_lossless(self):
        config = self.config()
        payload = config_to_dict(config)
        rebuilt = config_from_dict(payload)
        assert config_to_dict(rebuilt) == payload
        assert rebuilt.graph.variant is GraphVariant.AUGMENTED_AST
        assert rebuilt.model.conv == "rgcn"
        assert [k.kernel_name for k in rebuilt.data.sweep.kernels] == \
            ["matmul", "transpose"]
        assert rebuilt.data.sweep.variant_kinds == \
            (VariantKind.GPU, VariantKind.GPU_MEM)
        assert rebuilt.train_fraction == 0.8

    def test_payload_is_json_safe(self):
        import json
        text = json.dumps(config_to_dict(self.config()))
        rebuilt = config_from_dict(json.loads(text))
        assert rebuilt.data.platforms == ("NVIDIA V100", "AMD MI50")

    def test_methods_on_config_object(self):
        config = self.config()
        assert ReproConfig.from_dict(config.to_dict()).to_dict() == config.to_dict()

    def test_partial_payload_uses_defaults(self):
        rebuilt = config_from_dict({"model": {"hidden_dim": 8}})
        assert rebuilt.model.hidden_dim == 8
        assert rebuilt.model.conv == "rgat"
        assert rebuilt.train_fraction == 0.9
        assert len(rebuilt.data.platforms) == 4

    def test_invalid_values_still_rejected_after_deserialization(self):
        payload = config_to_dict(self.config())
        payload["model"]["conv"] = "transformer"
        with pytest.raises(ValueError, match="unknown convolution"):
            config_from_dict(payload)


class TestWorkflowConfigAdapter:
    def test_from_workflow_config_maps_every_field(self):
        legacy = WorkflowConfig(
            sweep=SweepConfig(size_scales=(1.0,)),
            graph_variant=GraphVariant.RAW_AST,
            training=TrainingConfig(epochs=3),
            hidden_dim=12,
            conv="gat",
            seed=5,
            train_fraction=0.75,
            noisy_runtimes=False,
        )
        config = ReproConfig.from_workflow_config(legacy, platforms=(V100,))
        assert config.graph.variant is GraphVariant.RAW_AST
        assert config.model.hidden_dim == 12
        assert config.model.conv == "gat"
        assert config.training.epochs == 3
        assert config.train_fraction == 0.75
        assert config.seed == 5
        assert config.data.noisy_runtimes is False
        assert config.platform_specs() == (V100,)

    def test_from_workflow_config_rejects_other_types(self):
        with pytest.raises(TypeError, match="WorkflowConfig"):
            ReproConfig.from_workflow_config({"hidden_dim": 4})
