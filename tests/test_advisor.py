"""Tests for kernel analysis, the six transformations, codegen and the Advisor."""

import pytest

from repro.advisor import (
    ALL_VARIANTS,
    CodegenError,
    OpenMPAdvisor,
    VariantKind,
    analyze_kernel,
    analyze_kernel_cached,
    build_pragma,
    clear_analysis_cache,
    find_outer_loop_line,
    generate_all_variants,
    generate_variant,
    insert_pragma_before_outer_loop,
    rename_function,
    strip_pragmas,
)
from repro.clang import parse_source
from repro.clang.traversal import iter_omp_directives
from repro.hardware import V100, analytical_cost_model
from repro.kernels import ArraySpec, KernelDefinition, all_kernels, get_kernel


class TestKernelAnalysis:
    def test_matmul_analysis_structure(self):
        analysis = analyze_kernel(get_kernel("matmul"), {"N": 64, "M": 64, "K": 64})
        assert analysis.loop_nest_depth == 3
        assert analysis.collapsible_depth == 2
        assert analysis.trip_counts[:2] == (64, 64)
        assert analysis.total_iterations == 64 ** 3
        assert analysis.has_reduction

    def test_operation_counts_scale_with_size(self):
        small = analyze_kernel(get_kernel("matmul"), {"N": 32, "M": 32, "K": 32})
        large = analyze_kernel(get_kernel("matmul"), {"N": 64, "M": 64, "K": 64})
        assert large.operations.arithmetic > 7 * small.operations.arithmetic

    def test_memory_accesses_positive_for_all_kernels(self):
        for kernel in all_kernels():
            analysis = analyze_kernel(kernel)
            assert analysis.operations.memory_accesses > 0

    def test_branchy_kernel_detected(self):
        analysis = analyze_kernel(get_kernel("pf_find_index"))
        assert analysis.has_branches

    def test_branch_free_kernel_detected(self):
        analysis = analyze_kernel(get_kernel("matmul"))
        assert not analysis.has_branches

    def test_parallel_iterations_with_collapse(self):
        analysis = analyze_kernel(get_kernel("transpose"), {"N": 100, "M": 50})
        assert analysis.parallel_iterations_with_collapse(1) == 100
        assert analysis.parallel_iterations_with_collapse(2) == 100 * 50

    def test_arithmetic_intensity_positive(self):
        analysis = analyze_kernel(get_kernel("correlation"))
        assert analysis.arithmetic_intensity > 0

    def test_math_call_counted(self):
        analysis = analyze_kernel(get_kernel("knn_distance"))
        assert analysis.operations.math_calls > 0

    def test_cached_analysis_returns_same_object(self):
        clear_analysis_cache()
        first = analyze_kernel_cached(get_kernel("matvec"), {"N": 128, "M": 128})
        second = analyze_kernel_cached(get_kernel("matvec"), {"N": 128, "M": 128})
        assert first is second

    def test_cached_analysis_distinguishes_sizes(self):
        clear_analysis_cache()
        a = analyze_kernel_cached(get_kernel("matvec"), {"N": 128, "M": 128})
        b = analyze_kernel_cached(get_kernel("matvec"), {"N": 256, "M": 128})
        assert a is not b


class TestCodegen:
    SOURCE = "void f(int n) {\n  for (int i = 0; i < n; i++) {\n    x += i;\n  }\n}\n"

    def test_find_outer_loop_line(self):
        assert find_outer_loop_line(self.SOURCE) == 1

    def test_find_outer_loop_missing_raises(self):
        with pytest.raises(CodegenError):
            find_outer_loop_line("void f() { return; }")

    def test_insert_pragma_preserves_indentation(self):
        out = insert_pragma_before_outer_loop(self.SOURCE, "#pragma omp parallel for")
        lines = out.splitlines()
        assert lines[1] == "  #pragma omp parallel for"
        assert lines[2].lstrip().startswith("for")

    def test_inserted_source_still_parses(self):
        out = insert_pragma_before_outer_loop(self.SOURCE, "#pragma omp parallel for")
        unit = parse_source(out)
        assert list(iter_omp_directives(unit))

    def test_strip_pragmas_round_trip(self):
        with_pragma = insert_pragma_before_outer_loop(self.SOURCE, "#pragma omp parallel for")
        assert strip_pragmas(with_pragma) == self.SOURCE

    def test_rename_function(self):
        renamed = rename_function(self.SOURCE, "f", "f_gpu")
        assert "void f_gpu(" in renamed

    def test_rename_missing_function_raises(self):
        with pytest.raises(CodegenError):
            rename_function(self.SOURCE, "not_there", "x")


class TestTransformations:
    def test_six_variant_kinds(self):
        assert len(ALL_VARIANTS) == 6
        assert {k.value for k in ALL_VARIANTS} == {
            "cpu", "cpu_collapse", "gpu", "gpu_collapse", "gpu_mem", "gpu_collapse_mem"}

    def test_kind_properties(self):
        assert VariantKind.GPU.is_gpu and not VariantKind.CPU.is_gpu
        assert VariantKind.GPU_COLLAPSE.uses_collapse
        assert VariantKind.GPU_COLLAPSE_MEM.includes_data_transfer
        assert not VariantKind.GPU.includes_data_transfer

    def test_cpu_variant_pragma(self):
        variant = generate_variant(get_kernel("matmul"), VariantKind.CPU)
        assert variant.pragma == "#pragma omp parallel for"
        assert variant.collapse == 1

    def test_cpu_collapse_pragma(self):
        variant = generate_variant(get_kernel("matmul"), VariantKind.CPU_COLLAPSE)
        assert "collapse(2)" in variant.pragma

    def test_gpu_variant_pragma_without_map(self):
        variant = generate_variant(get_kernel("matmul"), VariantKind.GPU)
        assert "target teams distribute parallel for" in variant.pragma
        assert "map(" not in variant.pragma

    def test_gpu_mem_variant_has_map_clauses(self):
        variant = generate_variant(get_kernel("matmul"), VariantKind.GPU_MEM,
                                   {"N": 16, "M": 16, "K": 16})
        assert "map(to: A[0:256], B[0:256])" in variant.pragma
        assert "map(from: C[0:256])" in variant.pragma

    def test_gpu_collapse_mem_has_both(self):
        variant = generate_variant(get_kernel("transpose"), VariantKind.GPU_COLLAPSE_MEM,
                                   {"N": 8, "M": 8})
        assert "collapse(2)" in variant.pragma and "map(" in variant.pragma

    def test_variant_source_parses_with_expected_directive(self):
        variant = generate_variant(get_kernel("laplace_sweep"), VariantKind.GPU_COLLAPSE)
        unit = parse_source(variant.source)
        directives = list(iter_omp_directives(unit))
        assert directives[0].kind == "OMPTargetTeamsDistributeParallelForDirective"
        assert directives[0].clause_int("collapse") == 2

    def test_collapse_skipped_for_single_loop_kernel(self):
        variants = generate_all_variants(get_kernel("pf_weight_update"))
        kinds = {v.kind for v in variants}
        assert VariantKind.CPU_COLLAPSE not in kinds
        assert VariantKind.GPU_COLLAPSE not in kinds
        assert len(variants) == 3  # cpu, gpu, gpu_mem

    def test_collapsible_kernel_gets_all_six(self):
        variants = generate_all_variants(get_kernel("matmul"))
        assert len(variants) == 6

    def test_build_pragma_collapse_clamped(self):
        pragma, collapse = build_pragma(VariantKind.GPU_COLLAPSE, get_kernel("matvec"),
                                        get_kernel("matvec").sizes_with_defaults())
        assert collapse == 1
        assert "collapse" not in pragma

    def test_variant_name_includes_kind(self):
        variant = generate_variant(get_kernel("matmul"), VariantKind.GPU)
        assert variant.name.endswith(":gpu")

    @pytest.mark.parametrize("kernel", all_kernels(), ids=lambda k: k.full_name)
    def test_every_kernel_every_legal_variant_parses(self, kernel):
        for variant in generate_all_variants(kernel):
            unit = parse_source(variant.source)
            assert list(iter_omp_directives(unit)), variant.name


class TestAdvisorFacade:
    def test_recommend_requires_cost_model(self):
        with pytest.raises(RuntimeError):
            OpenMPAdvisor().recommend(get_kernel("matmul"))

    def test_recommend_returns_ranking_over_all_variants(self):
        advisor = OpenMPAdvisor(analytical_cost_model(V100))
        recommendation = advisor.recommend(
            get_kernel("matmul"), {"N": 256, "M": 256, "K": 256},
            num_teams=128, num_threads=128,
            kinds=[k for k in ALL_VARIANTS if k.is_gpu])
        assert len(recommendation.predicted_runtimes) == 4
        ranking = recommendation.ranking()
        assert ranking[0][1] <= ranking[-1][1]
        assert recommendation.best_kind.value == ranking[0][0]

    def test_gpu_collapse_beats_gpu_for_large_square_kernel(self):
        advisor = OpenMPAdvisor(analytical_cost_model(V100))
        recommendation = advisor.recommend(
            get_kernel("matmul"), {"N": 512, "M": 512, "K": 512},
            num_teams=128, num_threads=128,
            kinds=[VariantKind.GPU, VariantKind.GPU_COLLAPSE])
        assert recommendation.best_kind is VariantKind.GPU_COLLAPSE

    def test_mem_variant_never_faster_than_resident_variant(self):
        advisor = OpenMPAdvisor(analytical_cost_model(V100))
        recommendation = advisor.recommend(
            get_kernel("transpose"), {"N": 1024, "M": 1024},
            kinds=[VariantKind.GPU_COLLAPSE, VariantKind.GPU_COLLAPSE_MEM])
        runtimes = recommendation.predicted_runtimes
        assert runtimes["gpu_collapse"] <= runtimes["gpu_collapse_mem"]

    def test_analyze_delegates(self):
        advisor = OpenMPAdvisor()
        analysis = advisor.analyze(get_kernel("matvec"))
        assert analysis.kernel_name == "MV/matvec"


class TestAdvisorStaticAnalysis:
    RACY_KERNEL = KernelDefinition(
        application="Synthetic", kernel_name="histogram_bin0",
        domain="synthetic",
        source=(
            "void histogram_bin0(int n, double *bins, double *data) {\n"
            "  for (int i = 0; i < n; i++) {\n"
            "    bins[0] = bins[0] + data[i];\n"
            "  }\n"
            "}\n"),
        size_parameters=("n",),
        arrays=(ArraySpec("bins", 8, "n"), ArraySpec("data", 8, "n", "to")),
        default_sizes={"n": 1024},
    )

    GPU_KINDS = [k for k in ALL_VARIANTS if k.is_gpu]

    def test_recommend_surfaces_race_findings(self):
        advisor = OpenMPAdvisor(analytical_cost_model(V100))
        recommendation = advisor.recommend(self.RACY_KERNEL,
                                           kinds=self.GPU_KINDS)
        races = recommendation.race_findings
        assert races, "the planted race must be reported"
        for kind, issues in races.items():
            assert kind in recommendation.predicted_runtimes
            assert all(issue.checker == "omp-race" for issue in issues)
            assert {issue.variable for issue in issues} == {"bins"}

    def test_recommend_attaches_analysis_per_variant(self):
        advisor = OpenMPAdvisor(analytical_cost_model(V100))
        recommendation = advisor.recommend(self.RACY_KERNEL,
                                           kinds=self.GPU_KINDS)
        assert set(recommendation.analysis) == \
            set(recommendation.predicted_runtimes)

    def test_clean_kernel_has_no_race_findings(self):
        advisor = OpenMPAdvisor(analytical_cost_model(V100))
        recommendation = advisor.recommend(
            get_kernel("matmul"), {"N": 64, "M": 64, "K": 64},
            kinds=self.GPU_KINDS)
        assert recommendation.race_findings == {}
        assert all(not issues for issues in recommendation.analysis.values())

    def test_custom_analyzer_is_honored(self):
        from repro.analysis import AnalyzerRunner

        advisor = OpenMPAdvisor(
            analytical_cost_model(V100),
            analyzer=AnalyzerRunner(checkers=["dead-store"]))
        recommendation = advisor.recommend(self.RACY_KERNEL,
                                           kinds=self.GPU_KINDS)
        assert recommendation.race_findings == {}
