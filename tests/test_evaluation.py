"""Tests for the evaluation drivers (tables/figures) at miniature scale."""

import numpy as np
import pytest

from repro.evaluation import (
    ExperimentScale,
    figure4_series,
    figure5_series,
    figure6_series,
    format_curves,
    format_series,
    format_table,
    run_ablation,
    run_comparison,
    run_main_experiment,
    table1_text,
    table2_rows,
    table3_rows,
)
from repro.hardware import MI50, V100
from repro.kernels import get_kernel
from repro.ml.trainer import TrainingConfig
from repro.paragraph import GraphVariant
from repro.pipeline import SweepConfig

#: miniature sweep so the whole module runs in seconds
TINY_KERNELS = [get_kernel("matmul"), get_kernel("matvec"), get_kernel("pf_normalize"),
                get_kernel("transpose")]
TINY_SWEEP = SweepConfig(size_scales=(0.5, 1.0), team_counts=(64,), thread_counts=(8, 64),
                         kernels=TINY_KERNELS)
TINY_TRAINING = TrainingConfig(epochs=4, batch_size=16, learning_rate=3e-3, seed=0)


@pytest.fixture(scope="module")
def tiny_result():
    scale = ExperimentScale(sweep=TINY_SWEEP, epochs=4, hidden_dim=12, seed=0)
    return run_main_experiment(scale, platforms=(V100,))


class TestMainExperimentDrivers:
    def test_table2_rows(self, tiny_result):
        rows = table2_rows(tiny_result)
        assert len(rows) == 1
        assert rows[0]["data_points"] > 0
        assert rows[0]["runtime_max_ms"] >= rows[0]["runtime_min_ms"]

    def test_table3_rows(self, tiny_result):
        rows = table3_rows(tiny_result)
        assert rows[0]["platform"] == "NVIDIA V100"
        assert rows[0]["rmse_ms"] > 0
        assert rows[0]["normalized_rmse"] >= 0

    def test_figure4_series(self, tiny_result):
        series = figure4_series(tiny_result)
        assert "NVIDIA V100" in series
        assert all(v >= 0 for v in series["NVIDIA V100"].values())

    def test_figure5_series_length_matches_epochs(self, tiny_result):
        series = figure5_series(tiny_result)
        assert len(series["NVIDIA V100"]) == 4

    def test_figure6_series_groups_by_application(self, tiny_result):
        series = figure6_series(tiny_result)
        applications = set(series["NVIDIA V100"])
        assert applications <= {"MM", "MV", "ParticleFilter", "Transpose"}
        assert applications

    def test_experiment_scales_exist(self):
        assert ExperimentScale.small().epochs < ExperimentScale.paper().epochs
        assert len(ExperimentScale.paper().sweep.size_scales) > \
            len(ExperimentScale.small().sweep.size_scales)


class TestAblationDriver:
    @pytest.fixture(scope="class")
    def ablation(self):
        return run_ablation(sweep=TINY_SWEEP, training=TINY_TRAINING,
                            platforms=(MI50,), hidden_dim=12, seed=0)

    def test_all_three_variants_present(self, ablation):
        assert set(ablation.results) == {"raw_ast", "augmented_ast", "paragraph"}

    def test_rmse_table_rows(self, ablation):
        rows = ablation.rmse_table()
        assert len(rows) == 1
        row = rows[0]
        assert {"platform", "raw_ast", "augmented_ast", "paragraph"} <= set(row)
        assert all(row[key] > 0 for key in ("raw_ast", "augmented_ast", "paragraph"))

    def test_histories_for_platform(self, ablation):
        histories = ablation.histories_for(MI50.name)
        assert set(histories) == {"raw_ast", "augmented_ast", "paragraph"}
        assert all(len(history) == 4 for history in histories.values())


class TestComparisonDriver:
    @pytest.fixture(scope="class")
    def comparison(self):
        from repro.compoff import COMPOFFConfig

        return run_comparison(platform=V100, sweep=TINY_SWEEP, training=TINY_TRAINING,
                              compoff_config=COMPOFFConfig(epochs=20, seed=0),
                              hidden_dim=12, seed=0)

    def test_prediction_arrays_aligned(self, comparison):
        n = comparison.actual_us.shape[0]
        assert comparison.paragraph_predictions_us.shape == (n,)
        assert comparison.compoff_predictions_us.shape == (n,)
        assert n >= 1

    def test_figure8_points_structure(self, comparison):
        points = comparison.figure8_points()
        assert set(points) == {"ParaGraph", "COMPOFF"}
        for series in points.values():
            assert all(error >= 0 for _, error in series)

    def test_figure9_points_structure(self, comparison):
        points = comparison.figure9_points()
        assert len(points["ParaGraph"]) == len(points["COMPOFF"])

    def test_summary_metrics(self, comparison):
        summary = comparison.summary()
        assert set(summary) == {"ParaGraph", "COMPOFF"}
        assert summary["ParaGraph"]["rmse"] > 0


class TestReports:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]

    def test_format_table_empty(self):
        assert format_table([]) == "(empty table)"

    def test_format_series(self):
        text = format_series({"V100": {"0-10": 0.01, "10-20": 0.02}})
        assert "[V100]" in text and "0-10" in text

    def test_format_curves_samples_epochs(self):
        text = format_curves({"ParaGraph": [1.0, 0.9, 0.8, 0.7, 0.6, 0.5]}, every=2)
        assert "ParaGraph" in text and "0.5000" in text

    def test_table1_text_lists_all_applications(self):
        text = table1_text()
        for name in ("Correlation", "Covariance", "ParticleFilter", "Transpose"):
            assert name in text
