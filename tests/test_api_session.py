"""Tests for the repro.api session layer: stages, pipelines, Session."""

import numpy as np
import pytest

from repro.advisor import VariantKind, generate_variant
from repro.api import (
    DataConfig,
    DatasetStage,
    EncodeStage,
    GraphConfig,
    GraphStage,
    ModelConfig,
    ParseStage,
    Pipeline,
    PipelineError,
    PredictStage,
    ReproConfig,
    Session,
    SourceSpec,
    Stage,
    TrainStage,
    get_kernel,
)
from repro.hardware import V100
from repro.ml.trainer import TrainingConfig
from repro.paragraph import GraphVariant
from repro.pipeline import SweepConfig, WorkflowConfig, run_workflow

TINY_SWEEP = SweepConfig(size_scales=(1.0,), team_counts=(64,), thread_counts=(8, 64),
                         kernels=[get_kernel("matmul"), get_kernel("matvec")])
TINY_TRAINING = TrainingConfig(epochs=3, batch_size=16, learning_rate=2e-3, seed=0)


def tiny_config(**overrides) -> ReproConfig:
    defaults = dict(
        data=DataConfig(sweep=TINY_SWEEP, platforms=("v100",)),
        model=ModelConfig(hidden_dim=12),
        training=TINY_TRAINING,
        seed=0,
    )
    defaults.update(overrides)
    return ReproConfig(**defaults)


SOURCE = "void kernel(int n) { for (int i = 0; i < 50; i++) { n += i; } }"


class TestStageComposition:
    def test_parse_graph_encode_chain(self):
        pipeline = Pipeline([ParseStage(), GraphStage(), EncodeStage()])
        context = pipeline.run(specs=[SourceSpec(SOURCE, num_teams=4, num_threads=2)])
        assert context["graphs"][0].num_nodes == context["encoded"][0].num_nodes
        assert context["encoded"][0].aux_features.tolist() == [4.0, 2.0]

    def test_missing_input_raises_actionable_error(self):
        with pytest.raises(PipelineError, match=r"ParseStage requires \['specs'\]"):
            Pipeline([ParseStage()]).run()

    def test_out_of_order_stages_fail_with_contract_error(self):
        with pytest.raises(PipelineError, match="GraphStage requires"):
            Pipeline([GraphStage(), ParseStage()]).run(specs=[SourceSpec(SOURCE)])

    def test_pipelines_concatenate(self):
        front = Pipeline([ParseStage()])
        back = Pipeline([GraphStage()])
        chained = front + back
        assert [stage.name for stage in chained.stages] == ["ParseStage", "GraphStage"]
        assert "ParseStage" in chained.describe()

    def test_non_stage_rejected(self):
        with pytest.raises(PipelineError, match="not a Stage"):
            Pipeline([ParseStage(), object()])

    def test_provides_contract_enforced(self):
        class BrokenStage(Stage):
            provides = ("something",)

            def run(self, context):
                pass

        with pytest.raises(PipelineError, match="did not set"):
            Pipeline([BrokenStage()]).run()

    def test_dataset_and_train_stages(self):
        config = tiny_config()
        context = Pipeline([DatasetStage(config), TrainStage(config)]).run()
        assert "NVIDIA V100" in context["platform_results"]
        result = context["platform_results"]["NVIDIA V100"]
        assert len(result.history) == TINY_TRAINING.epochs
        assert result.metrics["rmse"] >= 0.0

    def test_graph_stage_is_variant_aware(self):
        specs = [SourceSpec(SOURCE)]
        full = Pipeline([ParseStage(), GraphStage()]).run(specs=specs)["graphs"][0]
        raw = Pipeline([ParseStage(), GraphStage(
            GraphConfig(variant=GraphVariant.RAW_AST))]).run(specs=specs)["graphs"][0]
        assert raw.num_edges < full.num_edges

    def test_source_spec_coercion(self):
        sizes = {"N": 32, "M": 32, "K": 32}
        variant = generate_variant(get_kernel("matmul"), VariantKind.GPU, sizes)
        spec = SourceSpec.of(variant, sizes=sizes, num_teams=8, num_threads=4)
        assert spec.source == variant.source
        assert spec.name == variant.name
        assert SourceSpec.of(spec) is spec
        with pytest.raises(TypeError, match="SourceSpec"):
            SourceSpec.of(123)


class TestSession:
    @pytest.fixture(scope="class")
    def session(self):
        session = Session(tiny_config())
        session.train()
        return session

    def test_workflow_matches_legacy_run_workflow(self, session):
        legacy_config = WorkflowConfig(sweep=TINY_SWEEP, training=TINY_TRAINING,
                                       hidden_dim=12, seed=0)
        with pytest.warns(DeprecationWarning, match="run_workflow is deprecated"):
            legacy = run_workflow(legacy_config, platforms=(V100,))
        ours = session.workflow()
        assert ours.metrics_table() == legacy.metrics_table()
        assert len(ours.build.datasets["NVIDIA V100"]) == \
            len(legacy.build.datasets["NVIDIA V100"])

    def test_training_is_memoized(self, session):
        assert session.train() is session.train()
        assert session.build_dataset() is session.build_dataset()

    def test_trainer_for_unknown_platform_is_actionable(self, session):
        with pytest.raises(KeyError, match="no trained model for platform"):
            session.trainer_for("mi50")

    def test_predict_batch_and_cache_hits(self, session):
        session.clear_cache()
        sizes = {"N": 48, "M": 48, "K": 48}
        kernel = get_kernel("matmul")
        variants = [generate_variant(kernel, kind, sizes)
                    for kind in (VariantKind.GPU, VariantKind.GPU_COLLAPSE,
                                 VariantKind.GPU_MEM)]
        before = session.cache_info()
        first = session.predict_batch(variants, "v100", sizes=sizes,
                                      num_teams=64, num_threads=8)
        mid = session.cache_info()
        second = session.predict_batch(variants, "v100", sizes=sizes,
                                       num_teams=64, num_threads=8)
        after = session.cache_info()

        assert first.shape == (3,)
        assert (first >= 0).all()
        np.testing.assert_allclose(first, second)
        assert mid.misses - before.misses == 3      # all cold on the first call
        assert mid.hits == before.hits
        assert after.hits - mid.hits == 3           # all cached on the second
        assert after.misses == mid.misses
        assert after.size == 3

    def test_cache_distinguishes_execution_context(self, session):
        session.clear_cache()
        sizes = {"N": 48, "M": 48, "K": 48}
        variant = generate_variant(get_kernel("matmul"), VariantKind.GPU, sizes)
        session.predict(variant, "v100", sizes=sizes, num_teams=64, num_threads=8)
        info = session.cache_info()
        session.predict(variant, "v100", sizes=sizes, num_teams=128, num_threads=8)
        assert session.cache_info().misses == info.misses + 1  # new teams => miss

    def test_cache_capacity_evicts_lru(self):
        session = Session(tiny_config(), graph_cache_size=2)
        session.train()
        sizes = {"N": 32, "M": 32, "K": 32}
        variants = [generate_variant(get_kernel("matmul"), kind, sizes)
                    for kind in (VariantKind.GPU, VariantKind.GPU_MEM,
                                 VariantKind.GPU_COLLAPSE)]
        for variant in variants:
            session.predict(variant, "v100", sizes=sizes)
        assert session.cache_info().size == 2
        # the least-recently-used entry (variants[0]) was evicted
        session.predict(variants[0], "v100", sizes=sizes)
        assert session.cache_info().misses == 4

    def test_predict_empty_batch(self, session):
        assert session.predict_batch([], "v100").shape == (0,)

    def test_cold_batch_constructs_each_distinct_source_once(self, session, monkeypatch):
        import repro.api.stages as stages
        calls = []
        original = stages.parse_source

        def counting_parse(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(stages, "parse_source", counting_parse)
        session.clear_cache()
        predictions = session.predict_batch([SOURCE] * 5, "v100")
        assert predictions.shape == (5,)
        np.testing.assert_allclose(predictions, predictions[0])
        assert len(calls) == 1            # 5 identical requests, 1 construction
        assert session.cache_info().size == 1

    def test_dataset_builder_honors_default_trip_count(self):
        # with no bound sizes, loop trip counts fall back to the default —
        # the training path must honor the configured value (train/serve parity)
        from repro.pipeline import Configuration
        from repro.pipeline.dataset_builder import DatasetBuilder

        variant = generate_variant(get_kernel("matmul"), VariantKind.GPU)
        configuration = Configuration(variant, {}, 4, 4)

        def max_weight(trip_count):
            builder = DatasetBuilder(platforms=(V100,), noisy=False,
                                     default_trip_count=trip_count)
            build = builder.build(configurations=[configuration])
            return build.datasets["NVIDIA V100"][0].edge_weight.max()

        assert max_weight(64) > max_weight(2)

    def test_dataset_stage_passes_trip_count_to_builder(self, monkeypatch):
        import repro.api.stages as stages
        captured = {}
        original = stages.DatasetBuilder

        def spying_builder(*args, **kwargs):
            captured.update(kwargs)
            return original(*args, **kwargs)

        monkeypatch.setattr(stages, "DatasetBuilder", spying_builder)
        config = tiny_config(graph=GraphConfig(default_trip_count=5))
        Pipeline([DatasetStage(config)]).run(configurations=[])
        assert captured["default_trip_count"] == 5

    def test_predict_stage_runs_standalone(self, session):
        encoded = [session.encode_source(SOURCE, num_teams=4, num_threads=2)]
        context = Pipeline([PredictStage()]).run(
            encoded=encoded, trainer=session.trainer_for("v100"))
        assert context["predictions"].shape == (1,)


class TestLazyTopLevelImports:
    def test_repro_exposes_api_lazily(self):
        import repro
        assert "api" in dir(repro)
        assert repro.api.Session is Session

    def test_unknown_attribute_raises(self):
        import repro
        with pytest.raises(AttributeError, match="no attribute 'nope'"):
            repro.nope
