"""Tests for AST traversal utilities and the dumper."""

from repro.clang import analyze, parse_snippet, parse_source
from repro.clang.ast_nodes import ForStmt
from repro.clang.dumper import dump, summarize
from repro.clang.traversal import (
    count_nodes,
    enclosing_loops,
    iter_for_loops,
    iter_loops,
    iter_omp_directives,
    loop_nest_depth,
    perfectly_nested_for_loops,
    postorder,
    preorder,
    terminals_in_token_order,
)

NESTED = """
for (int i = 0; i < 10; i++) {
  for (int j = 0; j < 20; j++) {
    a[i][j] = i + j;
  }
}
"""


class TestTraversal:
    def test_preorder_starts_with_root(self):
        ast = parse_snippet("int x; x = 1;")
        nodes = list(preorder(ast))
        assert nodes[0] is ast

    def test_preorder_and_postorder_same_node_set(self):
        ast = parse_snippet(NESTED)
        assert {id(n) for n in preorder(ast)} == {id(n) for n in postorder(ast)}

    def test_postorder_children_before_parent(self):
        ast = parse_snippet("a = b + c;")
        order = {id(n): i for i, n in enumerate(postorder(ast))}
        for node in preorder(ast):
            for child in node.children:
                assert order[id(child)] < order[id(node)]

    def test_count_nodes_with_predicate(self):
        ast = parse_snippet(NESTED)
        assert count_nodes(ast, lambda n: n.kind == "ForStmt") == 2

    def test_terminals_in_token_order_sorted(self):
        ast = parse_snippet("int x; x = y + 1;")
        terminals = terminals_in_token_order(ast)
        indices = [t.token_index for t in terminals if t.token_index >= 0]
        assert indices == sorted(indices)

    def test_terminals_are_actually_terminal(self):
        ast = parse_snippet(NESTED)
        for terminal in terminals_in_token_order(ast):
            assert terminal.is_terminal

    def test_iter_loops_counts_all_loop_kinds(self):
        ast = parse_snippet("while (a) { } do { } while (b); for (;;) {}")
        assert len(list(iter_loops(ast))) == 3

    def test_iter_for_loops_only_for(self):
        ast = parse_snippet("while (a) { for (;;) {} }")
        assert len(list(iter_for_loops(ast))) == 1

    def test_loop_nest_depth(self):
        assert loop_nest_depth(parse_snippet(NESTED)) == 2

    def test_loop_nest_depth_sequential_loops(self):
        ast = parse_snippet("for (;;) {} for (;;) {}")
        assert loop_nest_depth(ast) == 1

    def test_enclosing_loops_outermost_first(self):
        ast = parse_snippet(NESTED)
        analyze(ast)
        inner_assignment = ast.find_all("BinaryOperator")[-1]
        loops = enclosing_loops(inner_assignment)
        assert len(loops) == 2
        assert isinstance(loops[0], ForStmt)

    def test_perfectly_nested_two_levels(self):
        ast = parse_snippet(NESTED)
        outer = next(iter_for_loops(ast))
        assert len(perfectly_nested_for_loops(outer)) == 2

    def test_imperfect_nest_stops_at_first_level(self):
        source = "for (int i = 0; i < 10; i++) { x = 1; for (int j = 0; j < 5; j++) {} }"
        outer = next(iter_for_loops(parse_snippet(source)))
        assert len(perfectly_nested_for_loops(outer)) == 1

    def test_iter_omp_directives(self):
        ast = parse_snippet("#pragma omp parallel for\nfor (int i = 0; i < 4; i++) {}")
        assert len(list(iter_omp_directives(ast))) == 1


class TestDumper:
    def test_dump_contains_node_kinds(self):
        text = dump(parse_snippet("int x = 1; if (x) { x = 2; }"))
        for kind in ("CompoundStmt", "DeclStmt", "VarDecl", "IfStmt"):
            assert kind in text

    def test_dump_contains_spellings(self):
        text = dump(parse_snippet("value = 42;"))
        assert "'value'" in text and "'42'" in text

    def test_dump_max_depth_limits_output(self):
        ast = parse_snippet(NESTED)
        shallow = dump(ast, max_depth=1)
        deep = dump(ast)
        assert len(shallow.splitlines()) < len(deep.splitlines())

    def test_summarize_counts(self):
        summary = summarize(parse_snippet("a = 1; b = 2;"))
        assert "BinaryOperator=2" in summary
