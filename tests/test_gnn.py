"""Tests for the GNN layers (RGAT/RGCN/GAT), pooling and the ParaGraph model."""

import numpy as np
import pytest

from repro.clang import analyze, parse_snippet
from repro.gnn import (
    GATConv,
    ParaGraphModel,
    RGATConv,
    RGCNConv,
    add_self_loops,
    global_max_pool,
    global_mean_max_pool,
    global_mean_pool,
    global_sum_pool,
    validate_edge_index,
)
from repro.nn import Adam, MSELoss, Tensor
from repro.paragraph import GraphEncoder, build_paragraph
from repro.paragraph.edges import NUM_EDGE_TYPES


def random_graph_inputs(num_nodes=6, num_edges=12, num_relations=3, dim=5, seed=0):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(num_nodes, dim)))
    edge_index = rng.integers(0, num_nodes, size=(2, num_edges))
    edge_type = rng.integers(0, num_relations, size=num_edges)
    edge_weight = rng.random(num_edges)
    return x, edge_index, edge_type, edge_weight


def numeric_gradient(fn, array, eps=1e-6):
    grad = np.zeros_like(array)
    flat, grad_flat = array.reshape(-1), grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn()
        flat[i] = original - eps
        down = fn()
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


class TestEdgeValidation:
    def test_validate_accepts_good_index(self):
        index = validate_edge_index(np.array([[0, 1], [1, 2]]), 3)
        assert index.dtype == np.int64

    def test_validate_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            validate_edge_index(np.zeros((3, 4)), 10)

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            validate_edge_index(np.array([[0], [5]]), 3)

    def test_add_self_loops(self):
        index = np.array([[0, 1], [1, 2]])
        new_index, new_type, new_weight = add_self_loops(
            index, 3, edge_type=np.array([1, 2]), self_loop_type=0,
            edge_weight=np.array([0.5, 0.7]), self_loop_weight=0.0)
        assert new_index.shape == (2, 5)
        assert new_type.tolist() == [1, 2, 0, 0, 0]
        assert new_weight.tolist() == [0.5, 0.7, 0.0, 0.0, 0.0]


class TestRGATConv:
    def test_output_shape_single_head(self):
        x, ei, et, ew = random_graph_inputs()
        conv = RGATConv(5, 7, num_relations=3, rng=np.random.default_rng(0))
        assert conv(x, ei, et, ew).shape == (6, 7)

    def test_output_shape_multi_head(self):
        x, ei, et, ew = random_graph_inputs()
        conv = RGATConv(5, 4, num_relations=3, heads=2, rng=np.random.default_rng(0))
        out = conv(x, ei, et, ew)
        assert out.shape == (6, 8)
        assert conv.output_dim == 8

    def test_handles_empty_edge_list(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 5)))
        conv = RGATConv(5, 3, num_relations=2)
        out = conv(x, np.zeros((2, 0), dtype=np.int64), np.zeros(0, dtype=np.int64))
        assert out.shape == (4, 3)

    def test_missing_relation_is_fine(self):
        x, ei, _, ew = random_graph_inputs()
        conv = RGATConv(5, 3, num_relations=8)
        out = conv(x, ei, np.zeros(ei.shape[1], dtype=np.int64), ew)
        assert out.shape == (6, 3)

    def test_rejects_bad_relation_index(self):
        x, ei, _, ew = random_graph_inputs()
        conv = RGATConv(5, 3, num_relations=2)
        with pytest.raises(ValueError):
            conv(x, ei, np.full(ei.shape[1], 5), ew)

    def test_edge_weight_changes_output(self):
        x, ei, et, _ = random_graph_inputs()
        conv = RGATConv(5, 3, num_relations=3, use_edge_weight=True,
                        rng=np.random.default_rng(0))
        out_zero = conv(x, ei, et, np.zeros(ei.shape[1]))
        out_heavy = conv(x, ei, et, np.full(ei.shape[1], 10.0))
        assert not np.allclose(out_zero.data, out_heavy.data)

    def test_edge_weight_ignored_when_disabled(self):
        x, ei, et, _ = random_graph_inputs()
        conv = RGATConv(5, 3, num_relations=3, use_edge_weight=False,
                        rng=np.random.default_rng(0))
        out_zero = conv(x, ei, et, np.zeros(ei.shape[1]))
        out_heavy = conv(x, ei, et, np.full(ei.shape[1], 10.0))
        np.testing.assert_allclose(out_zero.data, out_heavy.data)

    def test_gradients_flow_to_all_parameters(self):
        x, ei, et, ew = random_graph_inputs()
        conv = RGATConv(5, 3, num_relations=3, rng=np.random.default_rng(0))
        loss = conv(x, ei, et, ew).pow(2.0).sum()
        loss.backward()
        for name, parameter in conv.named_parameters():
            assert parameter.grad is not None, name

    def test_weight_gradient_matches_finite_difference(self):
        x, ei, et, ew = random_graph_inputs(num_nodes=5, num_edges=8,
                                            num_relations=2, dim=3, seed=3)
        conv = RGATConv(3, 2, num_relations=2, rng=np.random.default_rng(1))

        def loss_value():
            return conv(x, ei, et, ew).pow(2.0).sum().item()

        loss = conv(x, ei, et, ew).pow(2.0).sum()
        loss.backward()
        numeric = numeric_gradient(loss_value, conv.weight.data)
        np.testing.assert_allclose(conv.weight.grad, numeric, atol=1e-4, rtol=1e-3)

    def test_attention_gradient_matches_finite_difference(self):
        x, ei, et, ew = random_graph_inputs(num_nodes=5, num_edges=10,
                                            num_relations=2, dim=3, seed=5)
        conv = RGATConv(3, 2, num_relations=2, rng=np.random.default_rng(2))

        def loss_value():
            return (conv(x, ei, et, ew) * conv(x, ei, et, ew)).sum().item()

        loss = (conv(x, ei, et, ew) * conv(x, ei, et, ew)).sum()
        loss.backward()
        numeric = numeric_gradient(loss_value, conv.att_src.data)
        np.testing.assert_allclose(conv.att_src.grad, numeric, atol=1e-4, rtol=1e-3)


class TestOtherConvolutions:
    def test_rgcn_shape_and_gradients(self):
        x, ei, et, ew = random_graph_inputs()
        conv = RGCNConv(5, 6, num_relations=3, rng=np.random.default_rng(0))
        out = conv(x, ei, et, ew)
        assert out.shape == (6, 6)
        out.sum().backward()
        assert conv.weight.grad is not None and conv.root_weight.grad is not None

    def test_gat_is_single_relation(self):
        x, ei, _, ew = random_graph_inputs()
        conv = GATConv(5, 4, heads=2, rng=np.random.default_rng(0))
        assert conv(x, ei).shape == (6, 8)

    def test_rgcn_isolated_node_keeps_root_transform(self):
        x = Tensor(np.ones((3, 2)))
        conv = RGCNConv(2, 2, num_relations=1, rng=np.random.default_rng(0))
        edge_index = np.array([[0], [1]])   # node 2 isolated
        out = conv(x, edge_index, np.array([0]))
        expected_isolated = x.data[2] @ conv.root_weight.data + conv.bias.data
        np.testing.assert_allclose(out.data[2], expected_isolated)


class TestPooling:
    def setup_method(self):
        self.x = Tensor(np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]))
        self.batch = np.array([0, 0, 1])

    def test_mean_pool(self):
        out = global_mean_pool(self.x, self.batch, 2)
        np.testing.assert_allclose(out.data, [[2.0, 3.0], [5.0, 6.0]])

    def test_sum_pool(self):
        out = global_sum_pool(self.x, self.batch, 2)
        np.testing.assert_allclose(out.data, [[4.0, 6.0], [5.0, 6.0]])

    def test_max_pool(self):
        out = global_max_pool(self.x, self.batch, 2)
        np.testing.assert_allclose(out.data, [[3.0, 4.0], [5.0, 6.0]])

    def test_mean_max_pool_concatenates(self):
        out = global_mean_max_pool(self.x, self.batch, 2)
        assert out.shape == (2, 4)

    def test_mean_pool_gradient(self):
        x = Tensor(np.arange(6, dtype=float).reshape(3, 2), requires_grad=True)
        out = global_mean_pool(x, self.batch, 2).sum()
        out.backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5], [0.5, 0.5], [1.0, 1.0]])


class TestParaGraphModel:
    def _encoded_batch(self):
        encoder = GraphEncoder()
        sources = [
            "for (int i = 0; i < 16; i++) { a[i] = i; }",
            "for (int i = 0; i < 64; i++) { a[i] = a[i] * 2.0; }",
            "x = 1;",
        ]
        graphs = [encoder.encode(build_paragraph(analyze(parse_snippet(s))),
                                 num_teams=1 + i, num_threads=2 * (i + 1),
                                 target=float(10 ** i))
                  for i, s in enumerate(sources)]
        return encoder, GraphEncoder.collate(graphs)

    def test_forward_shape(self):
        encoder, batch = self._encoded_batch()
        model = ParaGraphModel(encoder.feature_dim, hidden_dim=8, head_dims=(8, 4), seed=0)
        assert model(batch).shape == (3,)

    def test_three_conv_layers_by_default(self):
        encoder, _ = self._encoded_batch()
        model = ParaGraphModel(encoder.feature_dim, hidden_dim=8)
        assert len(model.convs) == 3

    def test_num_relations_matches_paragraph(self):
        encoder, _ = self._encoded_batch()
        model = ParaGraphModel(encoder.feature_dim, hidden_dim=8)
        assert model.num_relations == NUM_EDGE_TYPES

    def test_alternative_convolutions(self):
        encoder, batch = self._encoded_batch()
        for conv in ("rgcn", "gat"):
            model = ParaGraphModel(encoder.feature_dim, hidden_dim=8, conv=conv, seed=0)
            assert model(batch).shape == (3,)

    def test_unknown_convolution_raises(self):
        with pytest.raises(ValueError):
            ParaGraphModel(10, conv="transformer")

    def test_predict_is_deterministic_in_eval(self):
        encoder, batch = self._encoded_batch()
        model = ParaGraphModel(encoder.feature_dim, hidden_dim=8, dropout=0.3, seed=0)
        first = model.predict(batch)
        second = model.predict(batch)
        np.testing.assert_allclose(first, second)

    def test_training_reduces_loss(self):
        encoder, batch = self._encoded_batch()
        targets = Tensor(np.array([0.1, 0.5, 0.9]))
        model = ParaGraphModel(encoder.feature_dim, hidden_dim=8, head_dims=(8, 4), seed=1)
        optimizer = Adam(model.parameters(), lr=1e-2)
        loss_fn = MSELoss()
        losses = []
        for _ in range(40):
            optimizer.zero_grad()
            loss = loss_fn(model(batch), targets)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.2

    def test_aux_features_affect_prediction(self):
        encoder, _ = self._encoded_batch()
        graph = build_paragraph(analyze(parse_snippet("for (int i = 0; i < 8; i++) { a[i] = i; }")))
        small = encoder.encode(graph, num_teams=1, num_threads=1)
        large = encoder.encode(graph, num_teams=512, num_threads=512)
        model = ParaGraphModel(encoder.feature_dim, hidden_dim=8, seed=0)
        predictions = model.predict(GraphEncoder.collate([small, large]))
        assert predictions[0] != pytest.approx(predictions[1])
