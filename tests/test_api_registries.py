"""Tests for the repro.api registries (convs, kernels, platforms)."""

import pytest

from repro.api import (
    Registry,
    RegistryError,
    conv_registry,
    get_conv,
    get_kernel,
    get_platform,
    kernel_registry,
    platform_registry,
    register_conv,
)
from repro.hardware import ALL_PLATFORMS, HardwareSpec
from repro.kernels.base import KernelDefinition


class TestRegistryMechanics:
    def test_register_and_get(self):
        registry = Registry("thing")
        registry.register("alpha", 1)
        assert registry.get("alpha") == 1
        assert "alpha" in registry
        assert registry.keys() == ["alpha"]

    def test_decorator_registration(self):
        registry = Registry("thing")

        @registry.register("beta")
        def factory():
            return 42

        assert registry.get("beta") is factory

    def test_lookup_is_case_and_separator_insensitive(self):
        registry = Registry("thing")
        registry.register("My Thing", "x")
        assert registry.get("my-thing") == "x"
        assert registry.get("MY_THING") == "x"

    def test_duplicate_registration_raises(self):
        registry = Registry("thing")
        registry.register("alpha", 1)
        with pytest.raises(RegistryError, match="already registered"):
            registry.register("alpha", 2)
        # override replaces instead of raising
        registry.register("alpha", 2, override=True)
        assert registry.get("alpha") == 2

    def test_unknown_key_error_lists_valid_keys(self):
        registry = Registry("thing")
        registry.register("alpha", 1)
        with pytest.raises(KeyError, match=r"unknown thing 'nope'.*alpha"):
            registry.get("nope")

    def test_override_under_equivalent_spelling_leaves_no_dangling_aliases(self):
        registry = Registry("thing")
        registry.register("My Thing", 1, aliases=("mt",))
        registry.register("my-thing", 2, override=True)   # normalizes identically
        assert registry.get("my-thing") == 2
        # the replaced entry's alias must not report membership it can't resolve
        assert "mt" not in registry
        with pytest.raises(KeyError):
            registry.get("mt")

    def test_aliases_resolve_and_unregister_cleans_them(self):
        registry = Registry("thing")
        registry.register("alpha", 1, aliases=("a", "first"))
        assert registry.get("first") == 1
        registry.unregister("a")
        with pytest.raises(KeyError):
            registry.get("alpha")
        with pytest.raises(KeyError):
            registry.get("first")

    def test_lazy_population_runs_once(self):
        calls = []

        def populate(registry):
            calls.append(1)
            registry.register("seeded", "s")

        registry = Registry("thing", populate=populate)
        assert calls == []                     # nothing happens at construction
        assert registry.get("seeded") == "s"
        assert registry.keys() == ["seeded"]
        assert calls == [1]


class TestDefaultRegistries:
    def test_conv_registry_has_builtin_kinds(self):
        assert {"rgat", "rgcn", "gat"} <= set(conv_registry.keys())
        assert callable(get_conv("rgat"))

    def test_register_conv_extends_model_selection(self):
        from repro.gnn.models import ParaGraphModel
        from repro.gnn.rgcn import RGCNConv

        @register_conv("test_rgcn_twin")
        def make_twin(in_dim, hidden_dim, *, num_relations, heads,
                      use_edge_weight, rng):
            return RGCNConv(in_dim, hidden_dim, num_relations,
                            use_edge_weight=use_edge_weight, rng=rng)

        try:
            model = ParaGraphModel(10, hidden_dim=8, conv="test_rgcn_twin", seed=0)
            assert model.conv_kind == "test_rgcn_twin"
        finally:
            conv_registry.unregister("test_rgcn_twin")
        with pytest.raises(ValueError, match="unknown convolution"):
            ParaGraphModel(10, hidden_dim=8, conv="test_rgcn_twin", seed=0)

    def test_kernel_registry_matches_table1(self):
        assert len(kernel_registry) == 17
        kernel = get_kernel("matmul")
        assert isinstance(kernel, KernelDefinition)
        assert get_kernel(f"{kernel.application}/matmul") is kernel

    def test_platform_registry_full_names_and_aliases(self):
        assert len(platform_registry) == len(ALL_PLATFORMS)
        spec = get_platform("NVIDIA V100")
        assert isinstance(spec, HardwareSpec)
        assert get_platform("v100") is spec
        assert get_platform("mi50").name == "AMD MI50"

    def test_unknown_platform_lists_registered_names(self):
        with pytest.raises(KeyError, match="NVIDIA V100"):
            get_platform("h100")
