"""Concurrency tests for the ``repro.serve`` runtime and the Session facade.

The acceptance property of the re-entrant engine refactor: N threads
hammering ``predict_batch`` on one shared :class:`repro.serve.Server` —
with **no external lock** — produce float64 predictions bit-identical to
the single-threaded reference, even while other threads serve float32
from the same model.  Plus the micro-batching behaviour (single submits
coalesce, poisoned requests don't fail their batch neighbours), the
lifecycle (drain/close), and the satellite fixes: empty-batch dtype,
cache ``reset_stats``, and the ``set_default_dtype`` serving deprecation.
"""

import threading

import numpy as np
import pytest

from repro.api import DataConfig, ModelConfig, ReproConfig, Session, get_kernel
from repro.ml.trainer import TrainingConfig
from repro.pipeline import SweepConfig
from repro.serve import Server, ServerConfig
from repro.synth import build_corpus

PLATFORM = "v100"


def tiny_config() -> ReproConfig:
    return ReproConfig(
        data=DataConfig(
            sweep=SweepConfig(size_scales=(1.0,), team_counts=(64,),
                              thread_counts=(8, 64),
                              kernels=[get_kernel("matmul")]),
            platforms=(PLATFORM,)),
        model=ModelConfig(hidden_dim=10),
        training=TrainingConfig(epochs=2, batch_size=16,
                                learning_rate=2e-3, seed=0),
        seed=0,
    )


@pytest.fixture(scope="module")
def session():
    session = Session(tiny_config())
    session.train()
    return session


@pytest.fixture(scope="module")
def requests():
    return build_corpus(12, seed=31).sources()


@pytest.fixture(scope="module")
def reference(session, requests):
    """Single-threaded references, computed before any worker pool exists."""
    return {
        "float64": session.predict_batch(requests, PLATFORM, dtype=None),
        "float32": session.predict_batch(requests, PLATFORM),
    }


class TestConcurrentPredictBatch:
    def test_threads_match_single_thread_reference_bit_for_bit(
            self, session, requests, reference):
        """≥4 worker threads, ≥6 client threads, mixed dtypes, no lock."""
        errors = []
        config = ServerConfig(num_workers=4, max_batch_size=8,
                              batch_window_s=0.001)
        with Server(session, config) as server:
            def hammer(index: int) -> None:
                try:
                    dtype = None if index % 2 == 0 else np.float32
                    expected = reference["float64" if dtype is None else "float32"]
                    for _ in range(3):
                        got = server.predict_batch(requests, PLATFORM, dtype=dtype)
                        if not np.array_equal(got, expected):
                            errors.append(
                                f"thread {index} (dtype={dtype}): max diff "
                                f"{np.abs(got - expected).max():g}")
                except Exception as error:  # noqa: BLE001 - reported below
                    errors.append(f"thread {index}: {type(error).__name__}: {error}")

            threads = [threading.Thread(target=hammer, args=(index,))
                       for index in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors, errors[0]

    def test_facade_and_standalone_server_agree_bitwise(
            self, session, requests, reference):
        with Server(session, ServerConfig(num_workers=2)) as server:
            np.testing.assert_array_equal(
                server.predict_batch(requests, PLATFORM, dtype=None),
                reference["float64"])

    def test_single_worker_matches_too(self, session, requests, reference):
        with Server(session, ServerConfig(num_workers=1)) as server:
            np.testing.assert_array_equal(
                server.predict_batch(requests, PLATFORM),
                reference["float32"])


class TestMicroBatching:
    def test_submitted_singles_coalesce(self, session, requests, reference):
        config = ServerConfig(num_workers=1, max_batch_size=16,
                              batch_window_s=0.05)
        with Server(session, config) as server:
            futures = [server.submit(spec, PLATFORM, dtype=None)
                       for spec in requests]
            values = np.array([future.result() for future in futures])
            stats = server.stats()
        # the packed forward keeps every BLAS call at solo shapes, so a
        # coalesced single is bit-identical to its solo run — whatever
        # micro-batch composition the scheduler happened to form
        np.testing.assert_array_equal(values, reference["float64"])
        assert stats.singles_submitted == len(requests)
        assert stats.max_coalesced >= 2, "no micro-batch was ever formed"
        assert stats.batches_executed < stats.singles_submitted

    def test_predict_routes_through_queue(self, session, requests, reference):
        with Server(session, ServerConfig(num_workers=2)) as server:
            value = server.predict(requests[0], PLATFORM, dtype=None)
        np.testing.assert_allclose(value, reference["float64"][0],
                                   rtol=1e-9, atol=1e-9)

    def test_poisoned_request_does_not_fail_batch_neighbours(
            self, session, requests):
        config = ServerConfig(num_workers=1, max_batch_size=8,
                              batch_window_s=0.05)
        with Server(session, config) as server:
            good = [server.submit(spec, PLATFORM) for spec in requests[:3]]
            bad = server.submit("this is } not C {", PLATFORM)
            for future in good:
                assert np.isfinite(future.result(timeout=30))
            with pytest.raises(Exception):
                bad.result(timeout=30)

    def test_mixed_dtype_singles_stay_in_their_shards(
            self, session, requests, reference):
        config = ServerConfig(num_workers=2, max_batch_size=8,
                              batch_window_s=0.02)
        with Server(session, config) as server:
            futures = [(index, server.submit(
                spec, PLATFORM, dtype=None if index % 2 else np.float32))
                for index, spec in enumerate(requests)]
            for index, future in futures:
                expected = reference["float64" if index % 2 else "float32"][index]
                np.testing.assert_allclose(future.result(timeout=30), expected,
                                           rtol=1e-5, atol=1e-5)


class TestBatcherPolicy:
    """Queue-level scheduling properties (no model needed)."""

    def test_overdue_singles_are_not_starved_by_job_traffic(self):
        from repro.serve import MicroBatcher, ShardKey

        batcher = MicroBatcher(max_batch_size=4, batch_window_s=0.0)
        key = ShardKey("platform", False, None)
        batcher.enqueue_single(key, "single")
        for _ in range(3):
            batcher.enqueue_job(key, ["job"])
        # the single's window (0 ms) has expired: it must be scheduled ahead
        # of the standing job backlog, not starved behind it
        item = batcher.next_batch()
        assert item.kind == "singles"
        batcher.task_done()
        assert batcher.next_batch().kind == "job"
        batcher.task_done()

    def test_fresh_singles_wait_their_window_behind_jobs(self):
        from repro.serve import MicroBatcher, ShardKey

        batcher = MicroBatcher(max_batch_size=4, batch_window_s=60.0)
        key = ShardKey("platform", False, None)
        batcher.enqueue_single(key, "single")
        batcher.enqueue_job(key, ["job"])
        item = batcher.next_batch()      # job runs while the single coalesces
        assert item.kind == "job"
        batcher.task_done()

    def test_job_scheduling_rotates_across_shards(self):
        from repro.serve import MicroBatcher, ShardKey

        batcher = MicroBatcher(max_batch_size=4, batch_window_s=60.0)
        first = ShardKey("first", False, None)
        second = ShardKey("second", False, None)
        batcher.enqueue_job(first, ["f1"])
        batcher.enqueue_job(first, ["f2"])
        batcher.enqueue_job(second, ["s1"])
        served = []
        for _ in range(3):
            item = batcher.next_batch()
            served.append(item.key.platform)
            batcher.task_done()
        # the second shard's job must not be starved behind the backlog of
        # the first-created shard
        assert served.index("second") < 2, served


class TestLifecycle:
    def test_drain_then_stats_account_everything(self, session, requests):
        config = ServerConfig(num_workers=2, max_batch_size=4,
                              batch_window_s=0.01)
        with Server(session, config) as server:
            futures = [server.submit(spec, PLATFORM) for spec in requests]
            assert server.drain(timeout=60)
            stats = server.stats()
            assert stats.requests_executed >= len(requests)
            for future in futures:
                assert future.done()

    def test_close_finishes_queue_and_rejects_new_work(self, session, requests):
        server = Server(session, ServerConfig(num_workers=1,
                                              batch_window_s=0.05))
        futures = [server.submit(spec, PLATFORM) for spec in requests[:4]]
        server.close()
        for future in futures:    # queued futures are honored, never dropped
            assert np.isfinite(future.result(timeout=30))
        with pytest.raises(RuntimeError, match="shut down"):
            server.predict_batch(requests, PLATFORM)
        server.close()            # idempotent

    def test_abandoned_server_is_garbage_collected(self, session, requests):
        import gc
        import weakref

        server = Server(session, ServerConfig(num_workers=2))
        server.predict_batch(requests[:2], PLATFORM)
        workers = list(server._workers)
        ref = weakref.ref(server)
        del server                 # dropped without close(): workers hold no
        gc.collect()               # strong ref, the finalizer stops the queue
        assert ref() is None
        for worker in workers:
            worker.join(timeout=10)
            assert not worker.is_alive()

    def test_inline_server_close_rejects_new_work_too(self, session, requests):
        server = Server(session, ServerConfig())       # num_workers=0, inline
        assert server.predict_batch(requests[:2], PLATFORM).shape == (2,)
        server.close()
        with pytest.raises(RuntimeError, match="shut down"):
            server.predict_batch(requests[:2], PLATFORM)
        with pytest.raises(RuntimeError, match="shut down"):
            server.submit(requests[0], PLATFORM)


class TestTypedShutdownErrors:
    """Post-close use raises ServerClosedError (a RuntimeError subclass, so
    the historical ``pytest.raises(RuntimeError, match="shut down")`` tests
    above keep passing unchanged)."""

    def test_pooled_server_raises_typed_error_after_close(
            self, session, requests):
        from repro.serve import ServerClosedError

        server = Server(session, ServerConfig(num_workers=1))
        server.close()
        with pytest.raises(ServerClosedError):
            server.submit(requests[0], PLATFORM)
        with pytest.raises(ServerClosedError):
            server.predict(requests[0], PLATFORM)
        with pytest.raises(ServerClosedError):
            server.predict_batch(requests[:2], PLATFORM)

    def test_inline_server_raises_typed_error_after_close(
            self, session, requests):
        from repro.serve import ServerClosedError

        server = Server(session, ServerConfig())       # num_workers=0
        server.close()
        with pytest.raises(ServerClosedError):
            server.submit(requests[0], PLATFORM)
        with pytest.raises(ServerClosedError):
            server.predict_batch(requests[:2], PLATFORM)

    def test_drain_after_close_is_well_defined(self, session, requests):
        server = Server(session, ServerConfig(num_workers=1))
        server.predict(requests[0], PLATFORM)
        server.close()
        assert server.drain(timeout=1.0) is True    # nothing left to drain
        inline = Server(session, ServerConfig())
        inline.close()
        assert inline.drain(timeout=1.0) is True


class TestWedgedWorkerTimeouts:
    """wait_idle/drain must return False promptly when work is stuck —
    a wedged worker translates into a bounded False, not a caller hang."""

    def test_wait_idle_returns_false_in_bounded_time(self):
        import time

        from repro.serve import MicroBatcher, ShardKey

        batcher = MicroBatcher(max_batch_size=4, batch_window_s=0.0)
        key = ShardKey("platform", False, None)
        batcher.enqueue_single(key, "stuck")
        item = batcher.next_batch()        # a "worker" takes the item ...
        assert item is not None            # ... and never calls task_done()
        start = time.monotonic()
        assert batcher.wait_idle(timeout=0.2) is False
        elapsed = time.monotonic() - start
        assert elapsed < 1.0, f"wait_idle overshot its timeout: {elapsed:.2f}s"
        assert batcher.wait_idle(timeout=0) is False   # poll form
        batcher.task_done()
        assert batcher.wait_idle(timeout=1.0) is True

    def test_drain_timeout_with_wedged_worker(self, session, requests):
        import time

        from repro.reliability import FaultPlan, FaultSpec, inject_faults
        from repro.reliability.faults import SITE_WORKER

        plan = FaultPlan(41, [FaultSpec(SITE_WORKER, "delay", 1.0,
                                        delay_s=1.0)])
        config = ServerConfig(num_workers=1, max_batch_size=1,
                              batch_window_s=0.0)
        with inject_faults(plan):
            with Server(session, config) as server:
                future = server.submit(requests[0], PLATFORM)
                start = time.monotonic()
                assert server.drain(timeout=0.1) is False
                assert time.monotonic() - start < 0.9
                assert np.isfinite(future.result(timeout=30))


class TestPoisonedBatchRetryPath:
    """The poisoned-batch splitter re-runs singles through the retry layer:
    neighbours still succeed, the poisoned request surfaces its *original*
    exception, and deterministic failures are not retried."""

    def test_neighbours_succeed_and_original_error_surfaces(
            self, session, requests, reference):
        from repro.clang.parser import ParseError

        config = ServerConfig(num_workers=1, max_batch_size=8,
                              batch_window_s=0.05)
        with Server(session, config) as server:
            good = [server.submit(spec, PLATFORM, dtype=None)
                    for spec in requests[:3]]
            bad = server.submit("this is } not C {", PLATFORM, dtype=None)
            # coalesced singles match to BLAS rounding (bit-identity is the
            # predict_batch job contract, not the coalescing one)
            for index, future in enumerate(good):
                np.testing.assert_allclose(future.result(timeout=30),
                                           reference["float64"][index],
                                           rtol=1e-12)
            with pytest.raises(ParseError):
                bad.result(timeout=30)
            stats = server.stats()
            assert stats.failures == 1
            assert stats.retries == 0, \
                "a deterministic parse error must not be retried"

    def test_transient_neighbour_faults_recover_in_batch(
            self, session, requests, reference):
        from repro.reliability import FaultPlan, FaultSpec, inject_faults
        from repro.reliability.faults import SITE_FORWARD

        # the whole batch fails its first forward, gets split, and each
        # single then succeeds (possibly after its own retry)
        plan = FaultPlan(43, [FaultSpec(SITE_FORWARD, "raise", 1.0,
                                        max_fires=1)])
        config = ServerConfig(num_workers=1, max_batch_size=8,
                              batch_window_s=0.05, max_retries=2,
                              retry_backoff_s=0.0)
        with inject_faults(plan):
            with Server(session, config) as server:
                futures = [server.submit(spec, PLATFORM, dtype=None)
                           for spec in requests[:3]]
                for index, future in enumerate(futures):
                    np.testing.assert_allclose(future.result(timeout=30),
                                               reference["float64"][index],
                                               rtol=1e-12)
                assert server.stats().retries >= 1
                assert server.stats().failures == 0


class TestPackedForward:
    """The packed block-diagonal serving path (ServerConfig.packed_forward)."""

    def test_packed_batch_matches_per_graph_loop_bit_for_bit(
            self, session, requests):
        legacy = Server(session, ServerConfig(packed_forward=False))
        packed = Server(session, ServerConfig())        # packed is the default
        per_graph = np.concatenate(
            [legacy.predict_batch([spec], PLATFORM, dtype=None)
             for spec in requests])
        np.testing.assert_array_equal(
            packed.predict_batch(requests, PLATFORM, dtype=None), per_graph,
            err_msg="packed forward diverged from the per-graph loop")

    def test_packed_forward_can_be_disabled(self, session, requests, reference):
        with Server(session, ServerConfig(num_workers=1,
                                          packed_forward=False)) as server:
            got = server.predict_batch(requests, PLATFORM, dtype=None)
        # the legacy collated loop matches only to BLAS rounding: batch
        # composition changes the GEMM shapes there
        np.testing.assert_allclose(got, reference["float64"], rtol=1e-9)

    def test_packed_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_PACKED", "0")
        assert ServerConfig.from_env().packed_forward is False
        monkeypatch.setenv("REPRO_SERVE_PACKED", "true")
        assert ServerConfig.from_env().packed_forward is True


class TestServerConfigFromEnv:
    """Satellite: malformed REPRO_SERVE_* values raise a ValueError naming
    the offending variable, never a bare parse traceback."""

    VALID = [
        ("REPRO_SERVE_WORKERS", "3", "num_workers", 3),
        ("REPRO_SERVE_MAX_BATCH", "16", "max_batch_size", 16),
        ("REPRO_SERVE_WINDOW_MS", "5", "batch_window_s", 0.005),
        ("REPRO_SERVE_DEADLINE_MS", "250", "default_deadline_s", 0.25),
        ("REPRO_SERVE_MAX_QUEUE", "9", "max_queue_depth", 9),
        ("REPRO_SERVE_MAX_RETRIES", "1", "max_retries", 1),
        ("REPRO_SERVE_BREAKER_THRESHOLD", "4", "breaker_threshold", 4),
        ("REPRO_SERVE_BREAKER_RESET_MS", "1500", "breaker_reset_s", 1.5),
        ("REPRO_SERVE_PACKED", "no", "packed_forward", False),
    ]

    MALFORMED = [
        ("REPRO_SERVE_WORKERS", "three"),
        ("REPRO_SERVE_MAX_BATCH", "4.5"),
        ("REPRO_SERVE_WINDOW_MS", "soon"),
        ("REPRO_SERVE_DEADLINE_MS", "1e"),
        ("REPRO_SERVE_MAX_QUEUE", ""),      # blank-after-strip keeps default
        ("REPRO_SERVE_MAX_RETRIES", "none"),
        ("REPRO_SERVE_BREAKER_THRESHOLD", "0x8"),
        ("REPRO_SERVE_BREAKER_RESET_MS", "5,0"),
        ("REPRO_SERVE_PACKED", "maybe"),
    ]

    @pytest.mark.parametrize("name,raw,attr,expected", VALID)
    def test_valid_values_land_on_their_knob(self, monkeypatch, name, raw,
                                             attr, expected):
        monkeypatch.setenv(name, raw)
        assert getattr(ServerConfig.from_env(), attr) == expected

    @pytest.mark.parametrize("name,raw", MALFORMED)
    def test_malformed_values_name_the_variable(self, monkeypatch, name, raw):
        monkeypatch.setenv(name, raw)
        if not raw.strip():
            assert ServerConfig.from_env() == ServerConfig.from_env()
            return
        with pytest.raises(ValueError, match=name) as excinfo:
            ServerConfig.from_env()
        # `raise ... from None`: the int()/float() ValueError must not leak
        # as a chained traceback — the named message is the whole story
        assert excinfo.value.__suppress_context__
        assert repr(raw) in str(excinfo.value)

    def test_blank_values_keep_defaults(self, monkeypatch):
        for name, _ in self.MALFORMED:
            monkeypatch.setenv(name, "   ")
        assert ServerConfig.from_env() == ServerConfig()


class TestExpiredRequestInPackedBatch:
    """Satellite: one already-expired request in a coalesced batch is
    dropped alone at dequeue — it must not poison or delay its neighbours."""

    def test_batcher_drops_only_the_expired_single(self):
        import time

        from repro.reliability import DeadlineExceeded
        from repro.serve import MicroBatcher, ShardKey

        batcher = MicroBatcher(max_batch_size=8, batch_window_s=0.0)
        key = ShardKey("platform", False, None)
        expired = batcher.enqueue_single(key, "expired",
                                         deadline=time.monotonic() - 1.0)
        live = [batcher.enqueue_single(key, f"live-{i}") for i in range(3)]
        item = batcher.next_batch()
        assert item is not None and item.kind == "singles"
        assert item.specs == ["live-0", "live-1", "live-2"]
        batcher.task_done()
        with pytest.raises(DeadlineExceeded):
            expired.result(timeout=1.0)
        assert all(not future.done() for future in live)
        assert batcher.stats().deadline_expired == 1

    def test_live_neighbours_survive_bit_for_bit(self, session, requests,
                                                 reference):
        from repro.reliability import DeadlineExceeded

        config = ServerConfig(num_workers=1, max_batch_size=8,
                              batch_window_s=0.1)
        with Server(session, config) as server:
            expired = server.submit(requests[0], PLATFORM, dtype=None,
                                    deadline_s=0.0)
            live = [server.submit(spec, PLATFORM, dtype=None)
                    for spec in requests[1:4]]
            for index, future in enumerate(live, start=1):
                np.testing.assert_array_equal(future.result(timeout=30),
                                              reference["float64"][index])
            with pytest.raises(DeadlineExceeded):
                expired.result(timeout=10.0)
            stats = server.stats()
        assert stats.deadline_expired == 1
        assert stats.failures == 0


class TestSessionFacadeSatellites:
    def test_empty_batch_honors_serving_dtype(self, session):
        assert session.predict_batch([], PLATFORM).dtype == np.float32
        assert session.predict_batch([], PLATFORM).shape == (0,)
        assert session.predict_batch([], PLATFORM, dtype=None).dtype == np.float64
        assert session.predict_batch([], PLATFORM,
                                     dtype=np.float64).dtype == np.float64
        with Server(session, ServerConfig()) as server:
            assert server.predict_batch([], PLATFORM).dtype == np.float32

    def test_cache_reset_stats_keeps_entries(self, session, requests):
        session.clear_cache()
        session.predict_batch(requests, PLATFORM)
        primed = session.cache_info()
        assert primed.misses > 0 and primed.size > 0
        session.reset_cache_stats()
        info = session.cache_info()
        assert (info.hits, info.misses) == (0, 0)
        assert info.size == primed.size            # entries survived
        session.predict_batch(requests, PLATFORM)
        after = session.cache_info()
        assert after.hits == len(requests) and after.misses == 0

    def test_clear_cache_can_also_reset_counters(self, session, requests):
        session.predict_batch(requests, PLATFORM)
        before = session.cache_info()
        assert before.hits + before.misses > 0
        session.clear_cache()                      # default keeps counters
        kept = session.cache_info()
        assert (kept.hits, kept.misses) == (before.hits, before.misses)
        assert kept.size == 0
        session.clear_cache(reset_stats=True)
        info = session.cache_info()
        assert (info.hits, info.misses, info.size) == (0, 0, 0)

    def test_session_embeds_worker_pool_from_config(self, requests, reference):
        session = Session(tiny_config(),
                          serve_config=ServerConfig(num_workers=2))
        try:
            got = session.predict_batch(requests, PLATFORM, dtype=None)
            np.testing.assert_array_equal(got, reference["float64"])
            assert session.server().config.num_workers == 2
        finally:
            session.close()

    def test_workers_env_is_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "3")
        session = Session(tiny_config())
        try:
            assert session.server().config.num_workers == 3
        finally:
            session.close()

    def test_set_default_dtype_deprecated_inside_serving_context(self):
        from repro.nn import serving_scope, set_default_dtype

        with serving_scope():
            with pytest.warns(DeprecationWarning, match="serving context"):
                set_default_dtype(np.float64)
