"""Tests for reference resolution, implicit casts, constant folding and
trip-count analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clang import analyze, parse_snippet, parse_source
from repro.clang.ast_nodes import DeclRefExpr, ForStmt, ImplicitCastExpr, VarDecl
from repro.clang.semantics import (
    ConstantEnvironment,
    SemanticError,
    counter_range,
    estimate_trip_count,
    evaluate_constant,
    insert_implicit_casts,
    resolve_references,
)
from repro.clang.parser import Parser
from repro.clang.lexer import tokenize


def parse_expr(text):
    return Parser(tokenize(text)).parse_expression()


class TestReferenceResolution:
    def test_local_variable_resolves(self):
        ast = parse_snippet("int x = 1; x = x + 2;")
        resolved = resolve_references(ast)
        refs = [n for n in ast.walk() if isinstance(n, DeclRefExpr)]
        assert resolved == len(refs)
        assert all(isinstance(r.referenced_decl, VarDecl) for r in refs)

    def test_parameter_resolves(self):
        unit = parse_source("void f(int n) { n = n + 1; }")
        resolve_references(unit)
        refs = unit.find_all("DeclRefExpr")
        assert all(ref.referenced_decl is not None for ref in refs)

    def test_loop_counter_resolves_inside_body(self):
        ast = parse_snippet("for (int i = 0; i < 10; i++) { int y = i; }")
        resolve_references(ast)
        refs = [n for n in ast.walk() if isinstance(n, DeclRefExpr) and n.name == "i"]
        assert refs and all(r.referenced_decl is not None for r in refs)

    def test_unresolved_library_call_allowed_by_default(self):
        ast = parse_snippet("double y = sqrt(2.0);")
        resolve_references(ast)  # should not raise
        sqrt_ref = [n for n in ast.walk() if isinstance(n, DeclRefExpr) and n.name == "sqrt"][0]
        assert sqrt_ref.referenced_decl is None

    def test_strict_mode_raises_on_unresolved(self):
        ast = parse_snippet("y = unknown_variable;")
        with pytest.raises(SemanticError):
            resolve_references(ast, strict=True)

    def test_shadowing_resolves_to_innermost(self):
        ast = parse_snippet("int x = 1; { int x = 2; x = 3; }")
        resolve_references(ast)
        inner_assignment_ref = [n for n in ast.walk()
                                if isinstance(n, DeclRefExpr) and n.name == "x"][-1]
        assert inner_assignment_ref.referenced_decl.init.value == 2

    def test_function_name_resolves_to_function_decl(self):
        unit = parse_source("int helper(int a) { return a; }\n"
                            "int main() { return helper(1); }")
        resolve_references(unit)
        call_ref = [n for n in unit.walk()
                    if isinstance(n, DeclRefExpr) and n.name == "helper"][0]
        assert call_ref.referenced_decl is not None
        assert call_ref.referenced_decl.kind == "FunctionDecl"


class TestImplicitCasts:
    def test_rvalue_use_gets_cast(self):
        ast = parse_snippet("int x; int y; y = x;")
        insert_implicit_casts(ast)
        casts = ast.find_all("ImplicitCastExpr")
        assert len(casts) == 1
        assert isinstance(casts[0].children[0], DeclRefExpr)

    def test_assignment_lhs_not_cast(self):
        ast = parse_snippet("int x; x = 1;")
        insert_implicit_casts(ast)
        assert ast.find_all("ImplicitCastExpr") == []

    def test_condition_use_gets_cast_like_figure2(self):
        # the paper's Fig. 2: if (x > 50) shows ImplicitCastExpr above DeclRefExpr
        ast = parse_snippet("int x; if (x > 50) { x = 1; }")
        insert_implicit_casts(ast)
        condition_casts = ast.find_all("ImplicitCastExpr")
        assert len(condition_casts) == 1

    def test_array_base_gets_decay_cast(self):
        ast = parse_snippet("double a[10]; double y; y = a[2];")
        insert_implicit_casts(ast)
        kinds = {c.cast_kind for c in ast.find_all("ImplicitCastExpr")}
        assert "ArrayToPointerDecay" in kinds

    def test_address_of_operand_not_cast(self):
        ast = parse_snippet("int x; int *p; p = &x;")
        insert_implicit_casts(ast)
        for cast in ast.find_all("ImplicitCastExpr"):
            assert cast.children[0].name != "x" or cast.cast_kind != "LValueToRValue"

    def test_idempotent_no_double_wrap(self):
        ast = parse_snippet("int x; int y; y = x + x;")
        first = insert_implicit_casts(ast)
        second = insert_implicit_casts(ast)
        assert second == 0
        assert len(ast.find_all("ImplicitCastExpr")) == first

    def test_parent_accessor_updated(self):
        ast = parse_snippet("int x; int y; y = x;")
        insert_implicit_casts(ast)
        assignment = [n for n in ast.walk() if n.kind == "BinaryOperator"][0]
        assert isinstance(assignment.rhs, ImplicitCastExpr)

    def test_analyze_runs_both_passes(self):
        ast = analyze(parse_snippet("int x = 2; int y; y = x;"))
        assert ast.find_all("ImplicitCastExpr")
        ref = [n for n in ast.walk() if isinstance(n, DeclRefExpr) and n.name == "x"][0]
        assert ref.referenced_decl is not None


class TestConstantFolding:
    def test_literal(self):
        assert evaluate_constant(parse_expr("42")) == 42

    def test_arithmetic(self):
        assert evaluate_constant(parse_expr("2 + 3 * 4")) == 14

    def test_division_integer(self):
        assert evaluate_constant(parse_expr("7 / 2")) == 3

    def test_unary_minus(self):
        assert evaluate_constant(parse_expr("-5")) == -5

    def test_comparison(self):
        assert evaluate_constant(parse_expr("3 < 5")) == 1

    def test_ternary(self):
        assert evaluate_constant(parse_expr("1 ? 10 : 20")) == 10

    def test_variable_from_environment(self):
        env = ConstantEnvironment({"N": 128})
        assert evaluate_constant(parse_expr("N * 2"), env) == 256

    def test_unknown_variable_returns_none(self):
        assert evaluate_constant(parse_expr("M + 1")) is None

    def test_sizeof_double(self):
        assert evaluate_constant(parse_expr("sizeof(double)")) == 8

    def test_division_by_zero_returns_none_or_zero(self):
        assert evaluate_constant(parse_expr("1 % 0")) in (None, 0)

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    @settings(max_examples=40, deadline=None)
    def test_addition_matches_python(self, a, b):
        assert evaluate_constant(parse_expr(f"({a}) + ({b})")) == a + b

    @given(st.integers(0, 500), st.integers(1, 50))
    @settings(max_examples=40, deadline=None)
    def test_multiplication_matches_python(self, a, b):
        assert evaluate_constant(parse_expr(f"{a} * {b}")) == a * b


class TestTripCount:
    def get_loop(self, source):
        ast = parse_snippet(source)
        return ast.find_all("ForStmt")[0]

    def test_simple_upward_loop(self):
        loop = self.get_loop("for (int i = 0; i < 100; i++) {}")
        assert estimate_trip_count(loop) == 100

    def test_inclusive_bound(self):
        loop = self.get_loop("for (int i = 0; i <= 100; i++) {}")
        assert estimate_trip_count(loop) == 101

    def test_nonzero_start(self):
        loop = self.get_loop("for (int i = 10; i < 100; i++) {}")
        assert estimate_trip_count(loop) == 90

    def test_step_two(self):
        loop = self.get_loop("for (int i = 0; i < 100; i += 2) {}")
        assert estimate_trip_count(loop) == 50

    def test_downward_loop(self):
        loop = self.get_loop("for (int i = 99; i >= 0; i--) {}")
        assert estimate_trip_count(loop) == 100

    def test_variable_bound_from_environment(self):
        loop = self.get_loop("for (int i = 0; i < N; i++) {}")
        env = ConstantEnvironment({"N": 777})
        assert estimate_trip_count(loop, env) == 777

    def test_unknown_bound_uses_default(self):
        loop = self.get_loop("for (int i = 0; i < unknown; i++) {}")
        assert estimate_trip_count(loop, default=7) == 7

    def test_zero_trip_loop(self):
        loop = self.get_loop("for (int i = 10; i < 5; i++) {}")
        assert estimate_trip_count(loop) == 0

    def test_flipped_condition(self):
        loop = self.get_loop("for (int i = 0; 100 > i; i++) {}")
        assert estimate_trip_count(loop) == 100

    def test_assignment_style_init(self):
        loop = self.get_loop("int i; for (i = 5; i < 25; i++) {}")
        assert estimate_trip_count(loop) == 20

    @given(st.integers(0, 50), st.integers(51, 300), st.integers(1, 7))
    @settings(max_examples=40, deadline=None)
    def test_trip_count_matches_python_range(self, start, stop, step):
        loop = self.get_loop(f"for (int i = {start}; i < {stop}; i += {step}) {{}}")
        assert estimate_trip_count(loop) == len(range(start, stop, step))


class TestConstantFoldingEdges:
    def test_division_by_zero_is_not_constant(self):
        assert evaluate_constant(parse_expr("1 / 0")) is None
        assert evaluate_constant(parse_expr("7 % 0")) is None

    def test_division_by_folded_zero(self):
        assert evaluate_constant(parse_expr("4 / (2 - 2)")) is None

    def test_integer_division_truncates(self):
        assert evaluate_constant(parse_expr("7 / 2")) == 3
        assert evaluate_constant(parse_expr("7.0 / 2")) == 3.5

    def test_mixed_unary_operators(self):
        assert evaluate_constant(parse_expr("-(-3)")) == 3
        assert evaluate_constant(parse_expr("+-+5")) == -5
        assert evaluate_constant(parse_expr("!0")) == 1
        assert evaluate_constant(parse_expr("~0")) == -1

    def test_unresolvable_name_is_not_constant(self):
        assert evaluate_constant(parse_expr("mystery + 1")) is None

    def test_environment_resolves_names(self):
        env = ConstantEnvironment({"N": 6})
        assert evaluate_constant(parse_expr("N * 2"), env) == 12

    def test_with_values_layers_without_mutation(self):
        base = ConstantEnvironment({"N": 4, "M": 2})
        layered = base.with_values({"M": 9, "K": 1})
        assert evaluate_constant(parse_expr("N + M"), layered) == 13
        assert evaluate_constant(parse_expr("K"), layered) == 1
        # the base environment is untouched
        assert evaluate_constant(parse_expr("M"), base) == 2
        assert evaluate_constant(parse_expr("K"), base) is None


class TestSemanticErrorLocation:
    def test_strict_error_names_line_and_column(self):
        ast = parse_snippet("int x = 1;\nx = missing_name;")
        with pytest.raises(SemanticError, match=r"line 2") as excinfo:
            resolve_references(ast, strict=True)
        assert excinfo.value.location[0] == 2

    def test_default_location_omitted_from_message(self):
        error = SemanticError("plain")
        assert "line" not in str(error)
        assert error.location == (0, 0)


class TestCounterRange:
    @staticmethod
    def get_loop(code):
        ast = analyze(parse_snippet(code))
        return [n for n in ast.walk() if isinstance(n, ForStmt)][0]

    def test_upward_exclusive(self):
        loop = self.get_loop("for (int i = 0; i < 10; i++) {}")
        assert counter_range(loop) == (0, 9)

    def test_upward_inclusive_with_stride(self):
        loop = self.get_loop("for (int i = 1; i <= 10; i += 3) {}")
        assert counter_range(loop) == (1, 10)

    def test_stride_stops_short_of_bound(self):
        loop = self.get_loop("for (int i = 0; i < 10; i += 4) {}")
        assert counter_range(loop) == (0, 8)

    def test_downward_loop(self):
        loop = self.get_loop("for (int i = 9; i >= 0; i--) {}")
        assert counter_range(loop) == (0, 9)

    def test_zero_trip_loop_has_no_range(self):
        loop = self.get_loop("for (int i = 10; i < 5; i++) {}")
        assert counter_range(loop) is None

    def test_unknown_bound_without_env(self):
        loop = self.get_loop("for (int i = 0; i < N; i++) {}")
        assert counter_range(loop) is None
        assert counter_range(loop, ConstantEnvironment({"N": 4})) == (0, 3)

    @given(st.integers(0, 20), st.integers(21, 100), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_range_matches_python_range(self, start, stop, step):
        loop = self.get_loop(
            f"for (int i = {start}; i < {stop}; i += {step}) {{}}")
        values = range(start, stop, step)
        assert counter_range(loop) == (values[0], values[-1])
