"""repro.obs suite: metrics registry, tracing, profiling and snapshots.

Covers the sketch's accuracy contract, the instrument/registry semantics,
the fault_point-style ambient fast paths, span-tree export fixpoints, the
``stats()``/``healthz()`` backward-compat regression (the counters now
live in the obs registry), the four-cache ``CacheStats`` surface, the
unified snapshot document and the ``python -m repro.obs`` CLI.
"""

import json
import math

import numpy as np
import pytest

from repro.obs import (
    CacheStats,
    MetricsRegistry,
    QuantileSketch,
    Span,
    Trace,
    TraceError,
    active_metrics,
    add_count,
    collect_cache_stats,
    metrics_scope,
    observe,
    set_gauge,
    snapshot,
    span,
    trace_requests,
    tracing_active,
    validate_snapshot,
)
from repro.obs.cli import main as obs_main
from repro.obs.profile import stage_scope, working_set_bytes
from repro.serve import Server, ServerConfig
from repro.synth.harness import tiny_serving_stack


@pytest.fixture(scope="module")
def stack():
    return tiny_serving_stack(seed=5)


# --------------------------------------------------------------------- #
# quantile sketch
# --------------------------------------------------------------------- #
class TestQuantileSketch:
    def test_tracks_count_sum_min_max_exactly(self):
        sketch = QuantileSketch()
        values = [0.5, 2.0, 8.0, 0.25]
        for value in values:
            sketch.observe(value)
        assert sketch.count == 4
        assert sketch.sum == pytest.approx(sum(values))
        assert sketch.min == 0.25
        assert sketch.max == 8.0

    def test_small_sample_percentiles_hit_the_right_sample(self):
        sketch = QuantileSketch(relative_accuracy=0.01)
        for value in (0.001, 0.004, 1.0):
            sketch.observe(value)
        # ceil-rank: p95/p99 of three samples is the third, p50 the second
        assert sketch.quantile(0.95) == pytest.approx(1.0, rel=0.03)
        assert sketch.quantile(0.99) == pytest.approx(1.0, rel=0.03)
        assert sketch.quantile(0.50) == pytest.approx(0.004, rel=0.03)
        assert sketch.quantile(0.0) == pytest.approx(0.001, rel=0.03)
        assert sketch.quantile(1.0) == pytest.approx(1.0, rel=0.03)

    def test_bounded_relative_error_vs_exact_percentiles(self):
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=-3.0, sigma=1.2, size=5000)
        accuracy = 0.01
        sketch = QuantileSketch(relative_accuracy=accuracy)
        for value in samples:
            sketch.observe(float(value))
        for q in (0.10, 0.50, 0.90, 0.95, 0.99):
            exact = float(np.percentile(samples, q * 100.0,
                                        method="higher"))
            estimate = sketch.quantile(q)
            assert abs(estimate - exact) <= 2.0 * accuracy * exact, (
                f"q={q}: sketch {estimate} vs exact {exact}")

    def test_zero_and_tiny_values_share_the_zero_bucket(self):
        sketch = QuantileSketch()
        for _ in range(10):
            sketch.observe(0.0)
        sketch.observe(5.0)
        assert sketch.quantile(0.5) == 0.0
        assert sketch.quantile(1.0) == 5.0

    def test_rejects_negative_and_nan(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.observe(-1.0)
        with pytest.raises(ValueError):
            sketch.observe(float("nan"))

    def test_empty_sketch_reports_nan_and_none(self):
        sketch = QuantileSketch()
        assert math.isnan(sketch.quantile(0.5))
        dump = sketch.to_dict()
        assert dump["count"] == 0 and dump["p99"] is None


# --------------------------------------------------------------------- #
# instruments + registry
# --------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.inc(3)
        assert registry.counter("a.b") is counter
        assert registry.counter("a.b").value == 3

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_counter_rejects_negative_increments(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_gauge_set_add_and_running_max(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(4.0)
        gauge.add(1.5)
        assert gauge.value == 5.5
        gauge.set_max(3.0)           # lower: ignored
        assert gauge.value == 5.5
        gauge.set_max(9.0)
        assert gauge.value == 9.0

    def test_to_dict_sections(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2.0)
        registry.histogram("h").observe(0.5)
        dump = registry.to_dict()
        assert dump["counters"] == {"c": 1}
        assert dump["gauges"] == {"g": 2.0}
        assert dump["histograms"]["h"]["count"] == 1
        assert registry.names() == ["c", "g", "h"]
        assert "c" in registry and "nope" not in registry


class TestAmbientScope:
    def test_helpers_are_noops_without_a_scope(self):
        assert active_metrics() is None
        observe("noop.h", 1.0)
        add_count("noop.c")
        set_gauge("noop.g", 2.0)
        assert active_metrics() is None

    def test_scope_records_and_clears(self):
        with metrics_scope() as registry:
            assert active_metrics() is registry
            add_count("s.c", 2)
            observe("s.h", 0.25)
            set_gauge("s.g", 7.0)
        assert active_metrics() is None
        assert registry.counter("s.c").value == 2
        assert registry.histogram("s.h").count == 1
        assert registry.gauge("s.g").value == 7.0

    def test_scopes_do_not_nest(self):
        with metrics_scope():
            with pytest.raises(RuntimeError, match="do not nest"):
                with metrics_scope():
                    pass


# --------------------------------------------------------------------- #
# tracing
# --------------------------------------------------------------------- #
class TestTracing:
    def test_span_is_a_shared_noop_when_disabled(self):
        assert not tracing_active()
        assert span("a") is span("b")    # the single shared null context

    def test_span_tree_structure_and_mini_traces(self):
        with trace_requests() as collector:
            with span("outer", kind="test") as outer:
                with span("inner"):
                    pass
            assert outer.children[0].name == "inner"
        traces = collector.traces()
        assert len(traces) == 1          # parentless span rooted a trace
        assert traces[0].root is outer
        assert traces[0].root.status == "ok"

    def test_span_records_errors(self):
        with trace_requests() as collector:
            with pytest.raises(RuntimeError):
                with span("failing"):
                    raise RuntimeError("boom")
        trace = collector.traces()[0]
        assert trace.root.status == "error"
        assert "RuntimeError: boom" in trace.root.error
        trace.validate()
        assert "!!" in trace.render() and "✗" in trace.render()

    def test_tracing_scopes_do_not_nest(self):
        with trace_requests():
            with pytest.raises(RuntimeError, match="do not nest"):
                with trace_requests():
                    pass

    def test_json_round_trip_is_a_fixpoint(self):
        root = Span("serve.request", {"kind": "single"})
        child = root.child("serve.submit")
        child.finish()
        root.finish()
        trace = Trace("t000042", root)
        trace._delivered = True
        payload = trace.to_json()
        restored = Trace.from_json(payload)
        assert restored.to_json() == payload
        restored.validate()
        assert restored.root.find("serve.submit") is not None

    def test_validate_rejects_unfinished_and_leaking_spans(self):
        root = Span("root")
        root.child("dangling")           # never finished
        root.finish()
        with pytest.raises(TraceError, match="not finished"):
            root.validate()
        parent = Span("parent", start_s=10.0)
        parent.finish(end_s=11.0)
        leaker = parent.child("leaker", start_s=20.0)
        leaker.finish(end_s=30.0)
        with pytest.raises(TraceError, match="leaks outside"):
            parent.validate()

    def test_from_json_rejects_bad_schema(self):
        with pytest.raises(TraceError, match="schema_version"):
            Trace.from_dict({"schema_version": 999, "trace_id": "x",
                             "root": {}})
        with pytest.raises(TraceError):
            Trace.from_json("not json {")


# --------------------------------------------------------------------- #
# profiling hooks
# --------------------------------------------------------------------- #
class TestProfile:
    def test_working_set_bytes_counts_arrays_and_containers(self):
        array = np.zeros((10, 10), dtype=np.float64)
        assert working_set_bytes(array) >= array.nbytes
        assert working_set_bytes([array, array]) >= 2 * array.nbytes
        assert working_set_bytes("abcd") >= 4
        assert working_set_bytes(None) == 0

    def test_stage_scope_is_a_shared_noop_when_disabled(self):
        class FakeStage:
            name = "FakeStage"
            provides = ()

        assert stage_scope(FakeStage(), {}) is stage_scope(FakeStage(), {})

    def test_pipeline_records_stage_metrics(self, stack):
        session, platform, sources = stack
        with metrics_scope() as registry:
            session.clear_cache()
            session.predict_batch(sources[:1], platform)
        wall = [name for name in registry.names()
                if name.startswith("stage.") and name.endswith(".wall_s")]
        assert wall, "no per-stage wall-time histograms were recorded"
        for name in wall:
            assert registry.histogram(name).count >= 1


# --------------------------------------------------------------------- #
# stats()/healthz() backward compatibility (satellite: re-routed counters)
# --------------------------------------------------------------------- #
class TestStatsCompat:
    STATS_FIELDS = (
        "num_workers", "singles_submitted", "jobs_submitted",
        "batches_executed", "requests_executed", "max_coalesced",
        "coalesced_total", "peak_depth", "warm_started", "shed",
        "deadline_expired", "failures", "retries", "breaker_rejections",
        "breakers_open", "queue_depth")
    HEALTHZ_FIELDS = (
        "status", "num_workers", "queue_depth", "requests_executed",
        "failures", "error_rate", "retries", "shed", "deadline_expired",
        "breaker_rejections", "breakers", "retry_budget_tokens",
        "warm_started")

    def test_inline_stats_shape_and_values(self, stack):
        session, platform, sources = stack
        server = Server(session, ServerConfig(num_workers=0))
        try:
            for source in sources:
                server.submit(source, platform).result(timeout=30.0)
            stats = server.stats()
        finally:
            server.close()
        # the dict shape is the pre-obs one, bit for bit
        assert tuple(stats._asdict()) == self.STATS_FIELDS
        assert stats.requests_executed == len(sources)
        assert stats.failures == 0 and stats.retries == 0
        assert stats.shed == 0 and stats.breaker_rejections == 0
        assert stats.queue_depth == 0
        assert all(isinstance(value, (int, bool))
                   for value in stats._asdict().values())

    def test_pooled_stats_and_healthz_shape(self, stack):
        session, platform, sources = stack
        server = Server(session, ServerConfig(num_workers=2,
                                              max_batch_size=4,
                                              batch_window_s=0.001))
        try:
            futures = [server.submit(source, platform) for source in sources]
            for future in futures:
                future.result(timeout=30.0)
            server.predict_batch(sources, platform)
            stats = server.stats()
            health = server.healthz()
        finally:
            server.close()
        assert tuple(stats._asdict()) == self.STATS_FIELDS
        assert stats.singles_submitted == len(sources)
        assert stats.jobs_submitted == 1
        assert stats.requests_executed == 2 * len(sources)
        assert tuple(health) == self.HEALTHZ_FIELDS
        assert health["status"] == "ok"
        assert health["failures"] == 0

    def test_counters_live_in_the_obs_registry(self, stack):
        session, platform, sources = stack
        server = Server(session, ServerConfig(num_workers=0))
        try:
            server.submit(sources[0], platform).result(timeout=30.0)
            assert server.metrics.counter("serve.inline_executed").value == 1
            assert server.metrics.histogram(
                "serve.request_latency_s").count == 1
        finally:
            server.close()


# --------------------------------------------------------------------- #
# cache statistics (satellite: the four LRUs through one interface)
# --------------------------------------------------------------------- #
class TestCacheStats:
    def test_hit_rate_and_dict_shape(self):
        stats = CacheStats("x", hits=3, misses=1, evictions=2, size=4,
                           capacity=8)
        assert stats.hit_rate == 0.75
        assert CacheStats("y", 0, 0, 0, 0, 8).hit_rate == 0.0
        assert set(stats.to_dict()) == {"hits", "misses", "evictions",
                                        "size", "capacity", "hit_rate"}

    def test_collect_covers_all_four_caches(self, stack):
        session, platform, sources = stack
        session.predict_batch(sources, platform)
        stats = collect_cache_stats(session)
        names = [entry.name for entry in stats]
        assert names == ["edge-layout", "packed-layout", "scatter-matrix",
                         "session-graphs"]
        assert all(isinstance(entry, CacheStats) for entry in stats)

    def test_edge_layout_cache_counts_evictions(self):
        from repro.gnn.edge_layout import EdgeLayoutCache

        cache = EdgeLayoutCache(capacity=1)
        ei_a = np.array([[0, 1], [1, 0]], dtype=np.int64)
        ei_b = np.array([[0, 2], [2, 0]], dtype=np.int64)
        cache.get(ei_a, None, 3, 2)
        cache.get(ei_b, None, 3, 2)     # evicts the first layout
        info = cache.info()
        assert info.evictions == 1
        assert info.size == 1

    def test_session_cache_counts_evictions(self):
        from repro.api.session import _GraphCache

        cache = _GraphCache(capacity=1)
        cache.put(("a",), object())
        cache.put(("b",), object())     # evicts ("a",)
        assert cache.get(("a",)) is None
        info = cache.info()
        assert info.evictions == 1 and info.size == 1
        cache.clear(reset_stats=True)
        assert cache.info().evictions == 0

    def test_scatter_matrix_cache_reports_stats(self):
        from repro.nn.tensor import scatter_matrix_cache_info

        info = scatter_matrix_cache_info()
        assert info.hits >= 0 and info.misses >= 0 and info.evictions >= 0


# --------------------------------------------------------------------- #
# the unified snapshot + the traced request tree (acceptance)
# --------------------------------------------------------------------- #
class TestSnapshot:
    def test_server_snapshot_validates_and_covers_the_surface(self, stack):
        session, platform, sources = stack
        server = Server(session, ServerConfig(num_workers=2,
                                              max_batch_size=4,
                                              batch_window_s=0.001))
        try:
            with metrics_scope(), trace_requests():
                for source in sources:
                    server.submit(source, platform).result(timeout=30.0)
                document = server.snapshot()
        finally:
            server.close()
        validate_snapshot(document)
        assert set(document["caches"]) == {"edge-layout", "packed-layout",
                                           "scatter-matrix",
                                           "session-graphs"}
        latency = document["server"]["latency"]
        assert latency["count"] == len(sources)
        assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]
        assert document["process"]["tracing"]["active"] is True
        assert document["process"]["faults"] == {"active": False}
        counters = document["server"]["metrics"]["counters"]
        assert counters["serve.singles_submitted"] == len(sources)

    def test_snapshot_without_a_server_still_works(self):
        document = snapshot()
        validate_snapshot(document)
        assert document["server"] is None
        assert document["process"]["metrics"] is None

    def test_validate_rejects_malformed_documents(self):
        from repro.obs import SnapshotError

        good = snapshot()
        bad = dict(good, schema_version=999)
        with pytest.raises(SnapshotError, match="schema_version"):
            validate_snapshot(bad)
        broken = json.loads(json.dumps(good))
        broken["caches"]["edge-layout"]["hits"] = -3
        with pytest.raises(SnapshotError, match="hits"):
            validate_snapshot(broken)

    def test_traced_request_covers_submit_to_respond(self, stack):
        session, platform, sources = stack
        server = Server(session, ServerConfig(num_workers=1,
                                              max_batch_size=2,
                                              batch_window_s=0.001))
        try:
            with trace_requests() as collector:
                server.submit(sources[0], platform).result(timeout=30.0)
        finally:
            server.close()
        traces = collector.traces()
        assert len(traces) == 1
        trace = traces[0]
        assert trace.root.name == "serve.request"
        trace.validate()
        for name in ("serve.submit", "serve.queue", "serve.execute",
                     "serve.encode", "engine.pack", "engine.forward"):
            assert trace.root.find(name) is not None, (
                f"span {name!r} missing from:\n{trace.render()}")


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
class TestCli:
    def test_snapshot_command_emits_valid_json(self, capsys):
        code = obs_main(["snapshot", "--requests", "2", "--workers", "1",
                         "--indent", "0"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        validate_snapshot(document)
        assert document["server"]["health"]["status"] in ("ok", "degraded")

    def test_trace_command_renders_a_tree(self, capsys):
        code = obs_main(["trace", "--workers", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "serve.request" in out and "serve.execute" in out

    def test_missing_command_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            obs_main([])
        assert excinfo.value.code == 2
