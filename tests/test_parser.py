"""Unit tests for the recursive-descent C parser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clang import parse_snippet, parse_source
from repro.clang.ast_nodes import (
    ArraySubscriptExpr,
    BinaryOperator,
    BreakStmt,
    CallExpr,
    CompoundAssignOperator,
    CompoundStmt,
    ConditionalOperator,
    ContinueStmt,
    CStyleCastExpr,
    DeclRefExpr,
    DeclStmt,
    DoStmt,
    ForStmt,
    FunctionDecl,
    IfStmt,
    IntegerLiteral,
    FloatingLiteral,
    MemberExpr,
    NullStmt,
    OMPParallelForDirective,
    OMPTargetTeamsDistributeParallelForDirective,
    ParenExpr,
    ReturnStmt,
    SizeOfExpr,
    UnaryOperator,
    VarDecl,
    WhileStmt,
)
from repro.clang.parser import ParseError


def first_stmt(source):
    return parse_snippet(source).children[0]


class TestExpressions:
    def test_integer_literal(self):
        stmt = first_stmt("42;")
        assert isinstance(stmt, IntegerLiteral)
        assert stmt.value == 42

    def test_float_literal(self):
        stmt = first_stmt("2.5;")
        assert isinstance(stmt, FloatingLiteral)
        assert stmt.value == pytest.approx(2.5)

    def test_hex_literal_value(self):
        assert first_stmt("0x10;").value == 16

    def test_binary_precedence_mul_over_add(self):
        stmt = first_stmt("a + b * c;")
        assert isinstance(stmt, BinaryOperator) and stmt.opcode == "+"
        assert isinstance(stmt.rhs, BinaryOperator) and stmt.rhs.opcode == "*"

    def test_binary_left_associativity(self):
        stmt = first_stmt("a - b - c;")
        assert stmt.opcode == "-"
        assert isinstance(stmt.lhs, BinaryOperator) and stmt.lhs.opcode == "-"

    def test_parentheses_override_precedence(self):
        stmt = first_stmt("(a + b) * c;")
        assert stmt.opcode == "*"
        assert isinstance(stmt.lhs, ParenExpr)

    def test_assignment_is_right_associative(self):
        stmt = first_stmt("a = b = c;")
        assert stmt.opcode == "="
        assert isinstance(stmt.rhs, BinaryOperator) and stmt.rhs.opcode == "="

    def test_compound_assignment_node_type(self):
        stmt = first_stmt("a += 2;")
        assert isinstance(stmt, CompoundAssignOperator)
        assert stmt.opcode == "+="

    def test_ternary(self):
        stmt = first_stmt("a ? b : c;")
        assert isinstance(stmt, ConditionalOperator)

    def test_unary_minus(self):
        stmt = first_stmt("-a;")
        assert isinstance(stmt, UnaryOperator) and stmt.opcode == "-" and stmt.prefix

    def test_prefix_and_postfix_increment(self):
        pre = first_stmt("++i;")
        post = first_stmt("i++;")
        assert pre.prefix and not post.prefix

    def test_call_with_arguments(self):
        stmt = first_stmt("f(a, b + 1, 3);")
        assert isinstance(stmt, CallExpr)
        assert len(stmt.args) == 3

    def test_call_no_arguments(self):
        assert len(first_stmt("g();").args) == 0

    def test_array_subscript(self):
        stmt = first_stmt("a[i + 1];")
        assert isinstance(stmt, ArraySubscriptExpr)
        assert isinstance(stmt.index, BinaryOperator)

    def test_nested_subscript(self):
        stmt = first_stmt("a[i][j];")
        assert isinstance(stmt, ArraySubscriptExpr)
        assert isinstance(stmt.base, ArraySubscriptExpr)

    def test_member_access(self):
        stmt = first_stmt("s.field;")
        assert isinstance(stmt, MemberExpr) and not stmt.is_arrow

    def test_arrow_access(self):
        stmt = first_stmt("p->field;")
        assert isinstance(stmt, MemberExpr) and stmt.is_arrow

    def test_cast_expression(self):
        stmt = first_stmt("(double) x;")
        assert isinstance(stmt, CStyleCastExpr)
        assert stmt.type_name == "double"

    def test_sizeof_type(self):
        stmt = first_stmt("sizeof(double);")
        assert isinstance(stmt, SizeOfExpr)
        assert stmt.type_name == "double"

    def test_sizeof_expression(self):
        stmt = first_stmt("sizeof x;")
        assert isinstance(stmt, SizeOfExpr)
        assert stmt.argument is not None

    def test_comma_operator(self):
        stmt = first_stmt("a = 1, b = 2;")
        assert isinstance(stmt, BinaryOperator) and stmt.opcode == ","

    def test_error_on_missing_operand(self):
        with pytest.raises(ParseError):
            parse_snippet("a + ;")

    def test_error_on_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse_snippet("(a + b;")


class TestStatements:
    def test_declaration_with_init(self):
        stmt = first_stmt("int x = 5;")
        assert isinstance(stmt, DeclStmt)
        decl = stmt.children[0]
        assert isinstance(decl, VarDecl) and decl.name == "x"
        assert isinstance(decl.init, IntegerLiteral)

    def test_declaration_multiple_declarators(self):
        stmt = first_stmt("int i, j = 2, k;")
        names = [d.name for d in stmt.children]
        assert names == ["i", "j", "k"]

    def test_pointer_declaration(self):
        decl = first_stmt("double *p;").children[0]
        assert "*" in decl.type_name

    def test_array_declaration(self):
        decl = first_stmt("double a[100];").children[0]
        assert len(decl.array_dims) == 1

    def test_if_without_else(self):
        stmt = first_stmt("if (x > 0) { y = 1; }")
        assert isinstance(stmt, IfStmt)
        assert stmt.else_branch is None

    def test_if_with_else(self):
        stmt = first_stmt("if (x) { } else { }")
        assert stmt.else_branch is not None

    def test_if_else_chain(self):
        stmt = first_stmt("if (a) x = 1; else if (b) x = 2; else x = 3;")
        assert isinstance(stmt.else_branch, IfStmt)

    def test_for_loop_children_order(self):
        stmt = first_stmt("for (int i = 0; i < 10; i++) { x += i; }")
        assert isinstance(stmt, ForStmt)
        assert isinstance(stmt.init, DeclStmt)
        assert isinstance(stmt.cond, BinaryOperator)
        assert isinstance(stmt.body, CompoundStmt)
        assert isinstance(stmt.inc, UnaryOperator)
        # paper ordering: init, cond, body, inc
        assert stmt.children == [stmt.init, stmt.cond, stmt.body, stmt.inc]

    def test_for_loop_empty_clauses(self):
        stmt = first_stmt("for (;;) { break; }")
        assert isinstance(stmt, ForStmt)
        assert isinstance(stmt.init, NullStmt)

    def test_for_single_statement_body_wrapped(self):
        stmt = first_stmt("for (i = 0; i < 5; i++) x += i;")
        assert isinstance(stmt.body, CompoundStmt)

    def test_while_loop(self):
        stmt = first_stmt("while (x > 0) { x--; }")
        assert isinstance(stmt, WhileStmt)

    def test_do_while_loop(self):
        stmt = first_stmt("do { x--; } while (x > 0);")
        assert isinstance(stmt, DoStmt)

    def test_return_with_value(self):
        stmt = first_stmt("return x + 1;")
        assert isinstance(stmt, ReturnStmt)
        assert stmt.value is not None

    def test_break_and_continue(self):
        block = parse_snippet("for(;;){ break; continue; }").children[0].body
        assert isinstance(block.children[0], BreakStmt)
        assert isinstance(block.children[1], ContinueStmt)

    def test_null_statement(self):
        assert isinstance(first_stmt(";"), NullStmt)

    def test_nested_blocks(self):
        stmt = first_stmt("{ { int x; } }")
        assert isinstance(stmt, CompoundStmt)
        assert isinstance(stmt.children[0], CompoundStmt)

    def test_unclosed_block_raises(self):
        with pytest.raises(ParseError):
            parse_snippet("{ int x;")


class TestOpenMPStatements:
    def test_parallel_for_directive_wraps_loop(self):
        stmt = first_stmt("#pragma omp parallel for\nfor (int i = 0; i < 10; i++) {}")
        assert isinstance(stmt, OMPParallelForDirective)
        assert isinstance(stmt.body, ForStmt)

    def test_target_teams_directive(self):
        stmt = first_stmt(
            "#pragma omp target teams distribute parallel for collapse(2)\n"
            "for (int i = 0; i < 10; i++) { for (int j = 0; j < 10; j++) {} }")
        assert isinstance(stmt, OMPTargetTeamsDistributeParallelForDirective)
        assert stmt.clause_int("collapse") == 2

    def test_non_omp_pragma_is_skipped(self):
        stmt = first_stmt("#pragma unroll\nx = 1;")
        assert isinstance(stmt, BinaryOperator)


class TestTopLevel:
    def test_function_definition(self):
        unit = parse_source("int add(int a, int b) { return a + b; }")
        func = unit.children[0]
        assert isinstance(func, FunctionDecl)
        assert func.name == "add"
        assert [p.name for p in func.params] == ["a", "b"]
        assert func.body is not None

    def test_function_declaration_without_body(self):
        unit = parse_source("double sqrt(double x);")
        assert unit.children[0].body is None

    def test_void_parameter_list(self):
        unit = parse_source("int main(void) { return 0; }")
        assert unit.children[0].params == []

    def test_array_parameter_becomes_pointer(self):
        unit = parse_source("void f(double a[], int n) {}")
        assert "*" in unit.children[0].params[0].type_name

    def test_global_variable(self):
        unit = parse_source("int N = 100;")
        assert isinstance(unit.children[0], DeclStmt)

    def test_typedef_registers_type_name(self):
        unit = parse_source("typedef unsigned long ulong_t; ulong_t counter;")
        assert isinstance(unit.children[-1], DeclStmt)

    def test_multiple_functions(self):
        unit = parse_source("void a() {}\nvoid b() {}\nvoid c() {}")
        assert len([n for n in unit.children if isinstance(n, FunctionDecl)]) == 3

    def test_parent_pointers_are_set(self):
        unit = parse_source("void f(int n) { for (int i = 0; i < n; i++) { n += i; } }")
        for node in unit.walk():
            for child in node.children:
                assert child.parent is node


@st.composite
def nested_for_loop(draw):
    depth = draw(st.integers(min_value=1, max_value=4))
    bound = draw(st.integers(min_value=1, max_value=100))
    body = "x = x + 1;"
    for level in reversed(range(depth)):
        body = f"for (int i{level} = 0; i{level} < {bound}; i{level}++) {{ {body} }}"
    return body, depth


class TestParserProperties:
    @given(nested_for_loop())
    @settings(max_examples=30, deadline=None)
    def test_nested_loops_parse_to_expected_depth(self, loop_and_depth):
        source, depth = loop_and_depth
        ast = parse_snippet(source)
        assert len(ast.find_all("ForStmt")) == depth

    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_addition_literal_values_preserved(self, a, b):
        stmt = first_stmt(f"{a} + {b};")
        assert stmt.lhs.value == a and stmt.rhs.value == b

    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=2, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_call_argument_count(self, args):
        stmt = first_stmt(f"f({', '.join(args)});")
        assert len(stmt.args) == len(args)
