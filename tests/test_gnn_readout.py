"""Tests for the graph-level readout options of the ParaGraph model."""

import numpy as np
import pytest

from repro.clang import analyze, parse_snippet
from repro.gnn import ParaGraphModel
from repro.paragraph import GraphEncoder, build_paragraph


def batch_of(sources):
    encoder = GraphEncoder()
    graphs = [encoder.encode(build_paragraph(analyze(parse_snippet(s))), target=1.0)
              for s in sources]
    return encoder, GraphEncoder.collate(graphs)


SOURCES = ["for (int i = 0; i < 32; i++) { a[i] = i; }", "x = y + 1;"]


class TestReadouts:
    @pytest.mark.parametrize("readout", ["mean", "sum", "mean_max"])
    def test_forward_shape_per_readout(self, readout):
        encoder, batch = batch_of(SOURCES)
        model = ParaGraphModel(encoder.feature_dim, hidden_dim=8, head_dims=(8, 4),
                               readout=readout, seed=0)
        assert model(batch).shape == (2,)

    def test_mean_max_doubles_graph_dim(self):
        encoder, _ = batch_of(SOURCES)
        mean_model = ParaGraphModel(encoder.feature_dim, hidden_dim=8, readout="mean", seed=0)
        concat_model = ParaGraphModel(encoder.feature_dim, hidden_dim=8, readout="mean_max", seed=0)
        assert concat_model.graph_dim == 2 * mean_model.graph_dim

    def test_unknown_readout_raises(self):
        with pytest.raises(ValueError):
            ParaGraphModel(10, readout="attention")

    def test_sum_readout_sensitive_to_graph_size(self):
        """Sum pooling should distinguish a small graph from a large one even
        with identical node-kind composition ratios."""
        encoder, batch = batch_of([
            "for (int i = 0; i < 4; i++) { a[i] = i; }",
            "for (int i = 0; i < 4; i++) { a[i] = i; } "
            "for (int j = 0; j < 4; j++) { b[j] = j; } "
            "for (int k = 0; k < 4; k++) { c[k] = k; }",
        ])
        model = ParaGraphModel(encoder.feature_dim, hidden_dim=8, readout="sum", seed=0)
        predictions = model.predict(batch)
        assert predictions[0] != pytest.approx(predictions[1])

    def test_gradients_flow_for_all_readouts(self):
        encoder, batch = batch_of(SOURCES)
        from repro.nn import MSELoss, Tensor

        for readout in ("mean", "sum", "mean_max"):
            model = ParaGraphModel(encoder.feature_dim, hidden_dim=8, readout=readout, seed=0)
            loss = MSELoss()(model(batch), Tensor(np.array([0.2, 0.6])))
            loss.backward()
            grads = [p.grad for p in model.parameters()]
            assert any(g is not None and np.abs(g).sum() > 0 for g in grads)
