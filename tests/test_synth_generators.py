"""Tests for the repro.synth generators and the harness machinery itself.

The property suites (``test_properties_*.py``) trust the generators and the
case runner; this module tests that trust: seeded determinism, knob
behaviour, seed reporting on failure, and the corpus-size contract of the
acceptance criteria (≥ 200 scenarios in the default tier-1 run).
"""

import numpy as np
import pytest

from repro.clang import analyze, parse_source
from repro.synth import (
    DEFAULT_TOTAL_CASES,
    SCENARIOS,
    GraphGenConfig,
    SourceGenConfig,
    build_corpus,
    cases_for,
    corpus_total_cases,
    generate_kernel,
    random_batch,
    random_encoded_graph,
    random_paragraph,
    reproduce,
    run_cases,
    seeds_for,
)
from repro.synth.harness import CASES_ENV, SEED_ENV


class TestSourceGenerator:
    def test_same_seed_is_bit_identical(self):
        assert generate_kernel(42).source == generate_kernel(42).source

    def test_different_seeds_differ(self):
        sources = {generate_kernel(seed).source for seed in range(20)}
        assert len(sources) == 20

    def test_generated_kernels_parse_and_analyze(self):
        for seed in range(10):
            kernel = generate_kernel(seed)
            ast = analyze(parse_source(kernel.source))
            assert ast.kind == "TranslationUnitDecl"

    def test_metadata_counts_loops_and_pragmas(self):
        kernel = generate_kernel(7)
        assert kernel.num_loops > 0
        # for loops spell "for (", while loops "while (c)", do loops "} while"
        assert kernel.source.count("for (") + kernel.source.count("while (") \
            == kernel.num_loops
        assert kernel.source.count("#pragma") == kernel.num_pragmas

    def test_pragma_probability_zero_emits_no_pragmas(self):
        config = SourceGenConfig(pragma_probability=0.0, comment_probability=0.0)
        for seed in range(8):
            assert "#pragma" not in generate_kernel(seed, config).source

    def test_pragma_probability_one_forces_pragmas_on_loopy_kernels(self):
        config = SourceGenConfig(pragma_probability=1.0)
        kernels = [generate_kernel(seed, config) for seed in range(12)]
        loopy = [k for k in kernels if "for (" in k.source]
        assert loopy, "expected at least one kernel with a for loop"
        assert all("#pragma omp" in k.source for k in loopy)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError, match="max_loop_depth"):
            SourceGenConfig(max_loop_depth=0)
        with pytest.raises(ValueError, match="pragma_probability"):
            SourceGenConfig(pragma_probability=1.5)

    def test_var_decls_metadata_is_deterministic(self):
        for seed in range(10):
            assert generate_kernel(seed).var_decls == \
                generate_kernel(seed).var_decls

    def test_fuzz_generator_initializes_every_decl(self):
        # the fuzz grammar always writes a declaration before reading it, so
        # generated kernels never trip the uninitialized-read checker
        for seed in range(10):
            kernel = generate_kernel(seed)
            assert kernel.var_decls, "expected declaration metadata"
            assert all(initialized for _, initialized in kernel.var_decls)

    def test_var_decls_match_the_source(self):
        kernel = generate_kernel(11)
        for name, _ in kernel.var_decls:
            assert f" {name} " in kernel.source or f" {name};" in kernel.source


class TestDefectGenerator:
    def test_same_seed_is_identical(self):
        from repro.synth import generate_defect_kernel
        assert generate_defect_kernel(9) == generate_defect_kernel(9)

    def test_defected_and_clean_twins_parse(self):
        from repro.synth import generate_defect_kernel
        for seed in range(6):
            for clean in (False, True):
                kernel = generate_defect_kernel(seed, clean=clean)
                ast = analyze(parse_source(kernel.source))
                assert ast.kind == "TranslationUnitDecl"

    def test_ground_truth_lines_point_at_real_lines(self):
        from repro.synth import generate_defect_kernel
        kernel = generate_defect_kernel(13)
        lines = kernel.source.splitlines()
        for defect in kernel.defects:
            assert 1 <= defect.line <= len(lines)
            if defect.checker != "dead-store":
                assert defect.variable in lines[defect.line - 1]

    def test_uninitialized_decl_is_recorded_in_metadata(self):
        from repro.synth import generate_defect_kernel
        kernel = generate_defect_kernel(4)
        planted_uninit = {d.variable for d in kernel.defects
                          if d.checker == "uninit-read"}
        uninitialized = {name for name, initialized in kernel.var_decls
                         if not initialized}
        assert planted_uninit <= uninitialized
        control = generate_defect_kernel(4, clean=True)
        assert all(initialized for _, initialized in control.var_decls)


class TestGraphGenerator:
    def test_same_seed_same_graph(self):
        a, b = random_paragraph(5), random_paragraph(5)
        assert [n.label for n in a.nodes] == [n.label for n in b.nodes]
        assert [e.as_tuple() for e in a.edges] == [e.as_tuple() for e in b.edges]

    def test_graphs_validate(self):
        for seed in range(25):
            random_paragraph(seed).validate()

    def test_encoded_graph_shapes(self):
        config = GraphGenConfig(num_nodes=(3, 9), feature_dim=5)
        encoded = random_encoded_graph(11, config)
        assert encoded.node_features.shape[1] == 5
        assert 3 <= encoded.num_nodes <= 9
        assert encoded.edge_index.shape == (2, encoded.num_edges)

    def test_corners_are_reachable(self):
        empty = single = False
        for seed in range(120):
            encoded = random_encoded_graph(seed)
            if encoded.num_edges == 0:
                empty = True
            elif len(set(encoded.edge_type.tolist())) == 1:
                single = True
        assert empty, "no-edge corner never generated"
        assert single, "single-relation corner never generated"

    def test_batch_is_block_diagonal(self):
        batch = random_batch(3, num_graphs=4)
        assert batch.num_graphs == 4
        assert (np.diff(batch.batch) >= 0).all()


class TestCorpus:
    def test_corpus_is_regenerable(self):
        first, second = build_corpus(6, seed=9), build_corpus(6, seed=9)
        assert [s.source for s in first] == [s.source for s in second]
        assert [s.sizes for s in first] == [s.sizes for s in second]

    def test_specs_duck_type_as_sources(self):
        from repro.api import SourceSpec
        corpus = build_corpus(2, seed=1)
        spec = SourceSpec.of(corpus.specs[0])
        assert spec.source == corpus.specs[0].kernel.source
        assert spec.name == corpus.specs[0].kernel.name

    def test_repeated_tiles_the_corpus(self):
        corpus = build_corpus(3, seed=0)
        assert len(corpus.repeated(4)) == 12


class TestHarness:
    def test_default_corpus_meets_acceptance_floor(self, monkeypatch):
        # ISSUE 3 acceptance: >= 200 seeded scenarios in the tier-1 run
        assert DEFAULT_TOTAL_CASES >= 200
        # at the default scale (env knob unset) the live count matches
        monkeypatch.delenv(CASES_ENV, raising=False)
        assert corpus_total_cases() == DEFAULT_TOTAL_CASES

    def test_seeds_are_deterministic_and_scenario_scoped(self):
        assert seeds_for("lexer-roundtrip") == seeds_for("lexer-roundtrip")
        assert seeds_for("lexer-roundtrip")[0] != seeds_for("parser-roundtrip")[0]

    def test_cases_env_scales_all_scenarios(self, monkeypatch):
        monkeypatch.setenv(CASES_ENV, str(2 * DEFAULT_TOTAL_CASES))
        for name, spec in SCENARIOS.items():
            assert cases_for(name) == 2 * spec.default_cases
        monkeypatch.setenv(CASES_ENV, "bogus")
        with pytest.raises(ValueError, match=CASES_ENV):
            cases_for("lexer-roundtrip")

    def test_seed_env_rerolls_the_corpus(self, monkeypatch):
        baseline = seeds_for("graph-validity")
        monkeypatch.setenv(SEED_ENV, "3")
        assert seeds_for("graph-validity") != baseline

    def test_failure_reports_seed_and_repro_command(self):
        def check(seed):
            if seed % 2:
                raise ValueError(f"boom at {seed}")

        with pytest.raises(AssertionError) as excinfo:
            run_cases("graph-validity", check=check, seeds=[2, 3, 4, 5])
        message = str(excinfo.value)
        assert "2/4 cases failed" in message
        assert "python -m repro.synth graph-validity 3" in message
        assert "boom at 3" in message

    def test_successful_sweep_reports_case_count(self):
        report = run_cases("noop", check=lambda seed: None, seeds=[1, 2, 3])
        assert report.ok and report.cases == 3

    def test_numpy_assertion_detail_survives_in_report(self):
        def check(seed):
            np.testing.assert_allclose(np.array([1.0]), np.array([2.0]))

        with pytest.raises(AssertionError) as excinfo:
            run_cases("noop", check=check, seeds=[4])
        # np.testing messages start with a newline; the report must keep the
        # first informative line, not an empty string
        assert "AssertionError: Not equal to tolerance" in str(excinfo.value)

    def test_zero_case_sweep_is_an_error_not_a_pass(self):
        with pytest.raises(ValueError, match="zero cases"):
            run_cases("unregistered", check=lambda seed: 1 / 0)
        with pytest.raises(ValueError, match="zero cases"):
            run_cases("noop", check=lambda seed: None, seeds=[])

    def test_reproduce_runs_one_registered_case(self):
        reproduce("graph-validity", seeds_for("graph-validity")[0])
        with pytest.raises(KeyError, match="unknown synth scenario"):
            reproduce("not-a-scenario", 0)

    def test_cli_lists_and_replays(self, capsys):
        from repro.synth.__main__ import main
        assert main([]) == 0
        assert "scenarios" in capsys.readouterr().out
        assert main(["graph-validity", str(seeds_for("graph-validity")[0])]) == 0
        assert "OK" in capsys.readouterr().out
        assert main(["not-a-scenario"]) == 2

    def test_synth_is_a_lazy_subpackage(self):
        import repro
        assert "synth" in dir(repro)
        assert repro.synth.generate_kernel is generate_kernel
