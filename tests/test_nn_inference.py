"""Tests for the autodiff inference fast path and the vectorized kernels.

Covers :func:`repro.nn.no_grad` (no graph recorded, no grads populated),
the configurable default dtype (float32 serving vs float64 training parity),
the iterative ``backward()`` topological sort on deep graphs, and numerical
gradient checks for the gather/scatter/segment primitives the vectorized GNN
kernels are built on.
"""

import numpy as np
import pytest

from repro.nn import (
    InferenceContext,
    Linear,
    Tensor,
    default_dtype,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    parameters_as,
    serving_scope,
    set_default_dtype,
)
from repro.nn import functional as F


def numeric_gradient(fn, x, eps=1e-6):
    """Central finite-difference gradient of scalar fn wrt array x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn(x)
        flat[i] = original - eps
        lower = fn(x)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * eps)
    return grad


def check_gradient(build_loss, shape, seed=0, atol=1e-5):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=shape)
    tensor = Tensor(data.copy(), requires_grad=True)
    build_loss(tensor).backward()
    numeric = numeric_gradient(lambda x: build_loss(Tensor(x)).item(), data.copy())
    assert tensor.grad is not None
    np.testing.assert_allclose(tensor.grad, numeric, atol=atol, rtol=1e-4)


class TestNoGrad:
    def test_records_no_graph(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        with no_grad():
            out = (a * 2.0 + 1.0).relu().sum()
        assert not out.requires_grad
        assert out._prev == ()

    def test_no_gradients_populated(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        with no_grad():
            loss = (a * a).sum()
        loss.backward()          # no-op apart from the root's own grad
        assert a.grad is None

    def test_flag_and_nesting(self):
        assert is_grad_enabled() and not Tensor.inference
        with no_grad():
            assert Tensor.inference and not is_grad_enabled()
            with no_grad():
                assert Tensor.inference
            assert Tensor.inference
        assert is_grad_enabled() and not Tensor.inference

    def test_flag_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_gradients_flow_again_after_exit(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            (a * 2.0).sum()
        (a * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full(3, 3.0))

    def test_concatenate_and_stack_respect_no_grad(self):
        from repro.nn import concatenate, stack
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            assert not concatenate([a, a]).requires_grad
            assert not stack([a, a]).requires_grad


class TestDefaultDtype:
    def test_context_switches_and_restores(self):
        assert get_default_dtype() == np.float64
        with default_dtype(np.float32):
            assert get_default_dtype() == np.float32
            assert Tensor([1.0, 2.0]).data.dtype == np.float32
        assert get_default_dtype() == np.float64
        assert Tensor([1.0]).data.dtype == np.float64

    def test_rejects_non_float(self):
        with pytest.raises(TypeError):
            set_default_dtype(np.int64)

    def test_float32_forward_stays_float32(self):
        with default_dtype(np.float32):
            a = Tensor(np.ones((4, 3)))
            b = Tensor(np.ones((3, 2)))
            out = ((a @ b) * 2.0).relu().sum(axis=0)
            assert out.data.dtype == np.float32

    def test_ops_preserve_input_dtype_outside_context(self):
        a = Tensor(np.ones((2, 2)), dtype=np.float32)
        assert (a + a).data.dtype == np.float32
        assert a.index_select(np.array([0])).data.dtype == np.float32
        assert a.scatter_add(np.array([0, 0]), 1).data.dtype == np.float32

    def test_parameters_as_round_trips_bit_exactly(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        original = layer.weight.data
        with parameters_as(layer, np.float32):
            assert layer.weight.data.dtype == np.float32
            assert layer.bias.data.dtype == np.float32
        assert layer.weight.data is original     # restored, not re-cast

    def test_parameters_as_is_module_scoped(self):
        cast = Linear(4, 3, rng=np.random.default_rng(0))
        bystander = Linear(4, 3, rng=np.random.default_rng(1))
        with parameters_as(cast, np.float32):
            assert cast.weight.data.dtype == np.float32
            # an unrelated module keeps its stored float64 weights
            assert bystander.weight.data.dtype == np.float64
            with parameters_as(bystander, np.float32):   # overlays compose
                assert bystander.weight.data.dtype == np.float32
                assert cast.weight.data.dtype == np.float32
            assert bystander.weight.data.dtype == np.float64

    def test_float32_predictions_match_float64(self):
        rng = np.random.default_rng(0)
        layer = Linear(8, 1, rng=rng)
        features = rng.normal(size=(16, 8))
        exact = layer(Tensor(features)).data
        with no_grad(), default_dtype(np.float32), parameters_as(layer, np.float32):
            fast = layer(Tensor(features)).data
        assert fast.dtype == np.float32
        np.testing.assert_allclose(fast, exact, rtol=1e-5, atol=1e-5)


class TestInferenceContext:
    """The contextvar-backed scoped engine state (thread-local, re-entrant)."""

    def test_bundles_no_grad_and_dtype(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        with InferenceContext(dtype=np.float32):
            assert not is_grad_enabled()
            assert get_default_dtype() == np.float32
            out = (a * 2.0).sum()
            assert not out.requires_grad
        assert is_grad_enabled() and get_default_dtype() == np.float64

    def test_nests_and_restores_in_order(self):
        with InferenceContext(dtype=np.float32):
            with InferenceContext(dtype=np.float64):
                assert get_default_dtype() == np.float64
            assert get_default_dtype() == np.float32
        assert get_default_dtype() == np.float64

    def test_grad_mode_keeps_recording(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with InferenceContext(dtype=np.float64, grad=True):
            (a * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full(3, 3.0))

    def test_threads_are_isolated(self):
        import threading

        barrier = threading.Barrier(2)
        seen = {}

        def serving_thread():
            with InferenceContext(dtype=np.float32):
                barrier.wait()
                seen["serve"] = (get_default_dtype(), is_grad_enabled())
                barrier.wait()

        def training_thread():
            barrier.wait()          # serving context active on the other side
            seen["train"] = (get_default_dtype(), is_grad_enabled())
            barrier.wait()

        threads = [threading.Thread(target=serving_thread),
                   threading.Thread(target=training_thread)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert seen["serve"] == (np.dtype(np.float32), False)
        assert seen["train"] == (np.dtype(np.float64), True)

    def test_rejects_non_float_dtype(self):
        with pytest.raises(TypeError):
            InferenceContext(dtype=np.int32)

    def test_parameter_views_are_immutable_casts(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        base = layer.weight.data
        with InferenceContext(dtype=np.float32):
            view = layer.weight.data
            assert view.dtype == np.float32
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0, 0] = 1.0
            assert layer.weight.data is view     # memoized per context dtype
        assert layer.weight.data is base         # stored array never touched

    def test_set_default_dtype_warns_inside_serving_scope(self):
        with serving_scope():
            with pytest.warns(DeprecationWarning, match="serving context"):
                previous = set_default_dtype(np.float64)
        assert previous == np.float64
        assert get_default_dtype() == np.float64


class TestIterativeBackward:
    def test_deep_chain_does_not_recurse(self):
        import sys
        depth = sys.getrecursionlimit() + 500
        t = Tensor(np.ones(2), requires_grad=True)
        acc = t
        for _ in range(depth):
            acc = acc + 1.0
        acc.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones(2))

    def test_diamond_graph_accumulates_once_per_path(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        a = t * 3.0
        b = t * 4.0
        (a + b).sum().backward()
        np.testing.assert_allclose(t.grad, [7.0])


class TestKernelGradients:
    """Numerical-gradient checks for the vectorized-kernel primitives."""

    def test_index_select(self):
        indices = np.array([0, 2, 2, 1])
        check_gradient(lambda x: x.index_select(indices).pow(2.0).sum(), (3, 4))

    def test_scatter_add(self):
        indices = np.array([0, 1, 0, 2, 1])
        check_gradient(lambda x: x.scatter_add(indices, 3).pow(2.0).sum(), (5, 3))

    def test_segment_softmax(self):
        segments = np.array([0, 0, 1, 1, 1, 2])
        check_gradient(
            lambda x: (F.segment_softmax(x, segments, 3) * x).sum(), (6, 2))

    def test_segment_matmul_wrt_x(self):
        weight = Tensor(np.random.default_rng(1).normal(size=(2, 3, 4)))
        offsets = np.array([0, 3, 5])
        check_gradient(
            lambda x: F.segment_matmul(x, weight, offsets).pow(2.0).sum(), (5, 3))

    def test_segment_matmul_wrt_weight(self):
        rng = np.random.default_rng(2)
        x_data = rng.normal(size=(5, 3))
        w_data = rng.normal(size=(2, 3, 4))
        offsets = np.array([0, 3, 5])

        weight = Tensor(w_data.copy(), requires_grad=True)
        F.segment_matmul(Tensor(x_data), weight, offsets).pow(2.0).sum().backward()
        numeric = numeric_gradient(
            lambda w: F.segment_matmul(Tensor(x_data), Tensor(w), offsets)
            .pow(2.0).sum().item(),
            w_data.copy())
        np.testing.assert_allclose(weight.grad, numeric, atol=1e-5, rtol=1e-4)

    def test_segment_matmul_empty_segment(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        weight = Tensor(np.ones((3, 2, 2)), requires_grad=True)
        out = F.segment_matmul(x, weight, np.array([0, 3, 3, 3]))
        out.sum().backward()
        assert out.shape == (3, 2)
        assert not weight.grad[1].any() and not weight.grad[2].any()

    def test_segment_matmul_rejects_bad_offsets(self):
        x = Tensor(np.ones((3, 2)))
        weight = Tensor(np.ones((2, 2, 2)))
        with pytest.raises(ValueError):
            F.segment_matmul(x, weight, np.array([0, 3]))
        with pytest.raises(ValueError):
            F.segment_matmul(x, weight, np.array([0, 2, 2, 3]))
        with pytest.raises(ValueError):
            F.segment_matmul(x, weight, np.array([0, 4, 3]))


class TestInPlaceAccumulation:
    def test_reused_tensor_sums_gradients(self):
        t = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        ((t * t) + (t * 3.0)).sum().backward()
        np.testing.assert_allclose(t.grad, 2 * t.data + 3.0)

    def test_grad_buffer_is_stable_across_ops(self):
        t = Tensor(np.ones((4, 2)), requires_grad=True)
        gathered = t.index_select(np.array([0, 0, 3]))
        scattered = gathered.scatter_add(np.array([0, 1, 1]), 2)
        scattered.sum().backward()
        np.testing.assert_allclose(t.grad, [[2.0, 2.0], [0.0, 0.0],
                                            [0.0, 0.0], [1.0, 1.0]])
