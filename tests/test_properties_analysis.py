"""Analysis property suite: planted-defect scoring over the synth corpus.

Sweeps the ``analysis-planted-defects`` scenario: for each seed a clean
control kernel must analyze to an empty report and its defected twin must
be reported exactly at the planted (checker, variable, line) ground truth,
with the report surviving a JSON round trip.  Replay one case with
``PYTHONPATH=src python -m repro.synth analysis-planted-defects <seed>``.
"""

from repro.analysis import AnalyzerRunner
from repro.synth import generate_defect_kernel, run_cases


class TestCorpusSweeps:
    def test_planted_defects_corpus(self):
        report = run_cases("analysis-planted-defects")
        assert report.ok and report.cases >= 2


class TestGroundTruthShape:
    def test_defect_kernel_is_deterministic(self):
        assert generate_defect_kernel(11) == generate_defect_kernel(11)
        assert generate_defect_kernel(11, clean=True) == \
            generate_defect_kernel(11, clean=True)

    def test_one_defect_per_checker_class(self):
        kernel = generate_defect_kernel(3)
        assert sorted(d.checker for d in kernel.defects) == [
            "array-bounds", "dead-store", "loop-carried-dep", "omp-race",
            "uninit-read"]

    def test_clean_twin_shares_name_and_flags(self):
        kernel = generate_defect_kernel(5)
        control = generate_defect_kernel(5, clean=True)
        assert kernel.name == control.name
        assert not control.defects and control.clean and not kernel.clean

    def test_per_checker_recall_is_total(self):
        # recall 1.0 per checker class: run each checker alone and require
        # it to find its own planted defect
        runner_cache = {}
        for seed in range(5):
            kernel = generate_defect_kernel(seed)
            for defect in kernel.defects:
                runner = runner_cache.setdefault(
                    defect.checker, AnalyzerRunner(checkers=[defect.checker]))
                report = runner.analyze_source(kernel.source)
                hits = [issue for issue in report.issues
                        if issue.variable == defect.variable
                        and issue.line == defect.line]
                assert hits, (f"seed {seed}: {defect.checker} missed "
                              f"{defect.variable} at line {defect.line}")
