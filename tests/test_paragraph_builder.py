"""Tests for the AST → ParaGraph construction, including the Fig. 2 scenarios."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clang import ConstantEnvironment, analyze, parse_snippet, parse_source
from repro.paragraph import (
    EdgeType,
    GraphVariant,
    ParaGraphBuilder,
    WeightConfig,
    build_paragraph,
)


def build(source, **kwargs):
    ast = analyze(parse_snippet(source))
    return build_paragraph(ast, **kwargs)


def edge_pairs(graph, edge_type):
    return [(graph.nodes[e.src].label, graph.nodes[e.dst].label)
            for e in graph.edges_of_type(edge_type)]


class TestBasicConstruction:
    def test_one_graph_node_per_ast_node(self):
        ast = analyze(parse_snippet("int x = 1; x = x + 2;"))
        graph = build_paragraph(ast)
        assert graph.num_nodes == sum(1 for _ in ast.walk())

    def test_child_edges_equal_nodes_minus_one(self):
        # a tree has exactly n-1 parent-child edges
        graph = build("int x = 1; if (x) { x = 2; } else { x = 3; }")
        assert len(graph.edges_of_type(EdgeType.CHILD)) == graph.num_nodes - 1

    def test_graph_validates(self):
        build("for (int i = 0; i < 10; i++) { a[i] = i; }").validate()

    def test_node_labels_are_ast_kinds(self):
        graph = build("x = 50;")
        assert "BinaryOperator" in graph.node_labels()
        assert "IntegerLiteral" in graph.node_labels()

    def test_terminal_flag_set_on_tokens(self):
        graph = build("x = 50;")
        terminal_labels = {n.label for n in graph.nodes if n.is_terminal}
        assert "IntegerLiteral" in terminal_labels
        assert "CompoundStmt" not in terminal_labels


class TestNextTokenEdges:
    def test_token_chain_length(self):
        graph = build("int x; x = 50;")
        terminals = [n for n in graph.nodes if n.is_terminal]
        next_token = graph.edges_of_type(EdgeType.NEXT_TOKEN)
        assert len(next_token) == len(terminals) - 1

    def test_chain_connects_left_to_right(self):
        graph = build("a = b;")
        # terminal order: a (DeclRefExpr), b (DeclRefExpr)
        edges = graph.edges_of_type(EdgeType.NEXT_TOKEN)
        assert len(edges) == 1
        assert graph.nodes[edges[0].src].spelling == "a"
        assert graph.nodes[edges[0].dst].spelling == "b"

    def test_no_next_token_in_raw_ast(self):
        graph = build("a = b;", variant=GraphVariant.RAW_AST)
        assert graph.edges_of_type(EdgeType.NEXT_TOKEN) == []


class TestNextSibEdges:
    def test_siblings_chained(self):
        graph = build("x = 1; y = 2; z = 3;")
        # the three assignments are siblings under the root CompoundStmt
        sib_edges = graph.edges_of_type(EdgeType.NEXT_SIB)
        root_children_edges = [e for e in sib_edges if e.src in (1, graph.nodes[1].node_id)]
        assert len(sib_edges) >= 2

    def test_sib_count_matches_sum_over_parents(self):
        source = "for (int i = 0; i < 4; i++) { a[i] = i; }"
        ast = analyze(parse_snippet(source))
        graph = build_paragraph(ast)
        expected = sum(max(len(node.children) - 1, 0) for node in ast.walk())
        assert len(graph.edges_of_type(EdgeType.NEXT_SIB)) == expected


class TestRefEdges:
    def test_ref_edge_to_declaration(self):
        graph = build("int x; x = 50;")
        refs = edge_pairs(graph, EdgeType.REF)
        assert ("DeclRefExpr", "VarDecl") in refs

    def test_ref_count_matches_resolved_uses(self):
        graph = build("int x; int y; y = x + x + y;")
        assert len(graph.edges_of_type(EdgeType.REF)) == 4  # x, x, y (rhs), y (lhs)

    def test_unresolved_reference_has_no_edge(self):
        graph = build("y = sqrt(2.0);")
        for src_label, dst_label in edge_pairs(graph, EdgeType.REF):
            assert dst_label != "FunctionDecl"


class TestLoopEdges:
    def test_forexec_and_fornext_counts(self):
        graph = build("for (int i = 0; i < 50; i++) { x += i; }")
        assert len(graph.edges_of_type(EdgeType.FOR_EXEC)) == 2
        assert len(graph.edges_of_type(EdgeType.FOR_NEXT)) == 2

    def test_forexec_connects_init_cond_body(self):
        graph = build("for (int i = 0; i < 50; i++) { x += i; }")
        pairs = edge_pairs(graph, EdgeType.FOR_EXEC)
        assert ("DeclStmt", "BinaryOperator") in pairs      # init -> cond
        assert ("BinaryOperator", "CompoundStmt") in pairs  # cond -> body

    def test_fornext_connects_body_inc_cond(self):
        graph = build("for (int i = 0; i < 50; i++) { x += i; }")
        pairs = edge_pairs(graph, EdgeType.FOR_NEXT)
        assert ("CompoundStmt", "UnaryOperator") in pairs   # body -> inc
        assert ("UnaryOperator", "BinaryOperator") in pairs  # inc -> cond

    def test_nested_loops_double_the_edges(self):
        graph = build(
            "for (int i = 0; i < 4; i++) { for (int j = 0; j < 4; j++) { x += j; } }")
        assert len(graph.edges_of_type(EdgeType.FOR_EXEC)) == 4
        assert len(graph.edges_of_type(EdgeType.FOR_NEXT)) == 4


class TestIfEdges:
    def test_contrue_and_confalse(self):
        graph = build("if (x > 50) { a = 1; } else { a = 2; }")
        assert len(graph.edges_of_type(EdgeType.CON_TRUE)) == 1
        assert len(graph.edges_of_type(EdgeType.CON_FALSE)) == 1

    def test_if_without_else_has_no_confalse(self):
        graph = build("if (x > 50) { a = 1; }")
        assert len(graph.edges_of_type(EdgeType.CON_TRUE)) == 1
        assert graph.edges_of_type(EdgeType.CON_FALSE) == []

    def test_contrue_source_is_condition(self):
        graph = build("if (x > 50) { a = 1; } else { a = 2; }")
        edge = graph.edges_of_type(EdgeType.CON_TRUE)[0]
        assert graph.nodes[edge.src].label == "BinaryOperator"
        assert graph.nodes[edge.dst].label == "CompoundStmt"


class TestWeights:
    def test_figure2_loop_weights(self):
        """The for-loop example of Fig. 2: init keeps weight 1, the condition,
        body and increment children get the 50-iteration weight."""
        graph = build("for (int i = 0; i < 50; i++) { x += i; }")
        for_node = [n for n in graph.nodes if n.label == "ForStmt"][0]
        child_edges = [e for e in graph.edges_of_type(EdgeType.CHILD)
                       if e.src == for_node.node_id]
        weights = {graph.nodes[e.dst].label: e.weight for e in child_edges}
        assert weights["DeclStmt"] == pytest.approx(1.0)
        assert weights["BinaryOperator"] == pytest.approx(50.0)
        assert weights["CompoundStmt"] == pytest.approx(50.0)
        assert weights["UnaryOperator"] == pytest.approx(50.0)

    def test_figure2_if_weights_halved_inside_loop(self):
        """The if example of Fig. 2: inside a 50-iteration loop the condition
        edge carries 50 while each branch carries 25."""
        graph = build(
            "for (int i = 0; i < 50; i++) { if (i > 25) { a[i] = 1; } else { a[i] = 2; } }")
        if_node = [n for n in graph.nodes if n.label == "IfStmt"][0]
        child_edges = [e for e in graph.edges_of_type(EdgeType.CHILD)
                       if e.src == if_node.node_id]
        weights = sorted(e.weight for e in child_edges)
        assert weights == pytest.approx([25.0, 25.0, 50.0])

    def test_statement_outside_loop_has_weight_one(self):
        graph = build("x = 50;")
        for edge in graph.edges_of_type(EdgeType.CHILD):
            assert edge.weight == pytest.approx(1.0)

    def test_nested_loops_multiply_weights(self):
        graph = build(
            "for (int i = 0; i < 10; i++) { for (int j = 0; j < 20; j++) { x += j; } }")
        max_weight = max(e.weight for e in graph.edges_of_type(EdgeType.CHILD))
        assert max_weight == pytest.approx(200.0)

    def test_thread_division_with_omp_parallel_for(self):
        source = ("#pragma omp parallel for\n"
                  "for (int i = 0; i < 100; i++) { x += i; }")
        graph = build(source, num_threads=4)
        weights = [e.weight for e in graph.edges_of_type(EdgeType.CHILD)]
        # 100 iterations statically shared by 4 threads -> 25 (paper example)
        assert max(weights) == pytest.approx(25.0)

    def test_teams_times_threads_division_for_target_directive(self):
        source = ("#pragma omp target teams distribute parallel for\n"
                  "for (int i = 0; i < 1000; i++) { x += i; }")
        graph = build(source, num_threads=10, num_teams=10)
        weights = [e.weight for e in graph.edges_of_type(EdgeType.CHILD)]
        assert max(weights) == pytest.approx(10.0)

    def test_environment_binds_symbolic_bounds(self):
        graph = build("for (int i = 0; i < N; i++) { x += i; }",
                      env=ConstantEnvironment({"N": 64}))
        assert max(e.weight for e in graph.edges_of_type(EdgeType.CHILD)) == pytest.approx(64.0)

    def test_unknown_bound_uses_default_trip_count(self):
        graph = build("for (int i = 0; i < n_unknown; i++) { x += i; }",
                      default_trip_count=7)
        assert max(e.weight for e in graph.edges_of_type(EdgeType.CHILD)) == pytest.approx(7.0)

    def test_weights_always_positive(self):
        graph = build("if (c) { if (d) { if (e) { x = 1; } } }")
        for edge in graph.edges_of_type(EdgeType.CHILD):
            assert edge.weight > 0


class TestVariants:
    SOURCE = "for (int i = 0; i < 9; i++) { if (i > 4) { a[i] = i; } }"

    def test_raw_ast_has_only_child_edges(self):
        graph = build(self.SOURCE, variant=GraphVariant.RAW_AST)
        counts = graph.edge_type_counts()
        assert counts[EdgeType.CHILD] == graph.num_edges

    def test_raw_ast_weights_are_one(self):
        graph = build(self.SOURCE, variant=GraphVariant.RAW_AST)
        assert all(e.weight == 1.0 for e in graph.edges)

    def test_augmented_ast_has_new_edges_but_unit_weights(self):
        graph = build(self.SOURCE, variant=GraphVariant.AUGMENTED_AST)
        counts = graph.edge_type_counts()
        assert counts[EdgeType.FOR_EXEC] == 2
        assert all(e.weight == 1.0 for e in graph.edges_of_type(EdgeType.CHILD))

    def test_paragraph_has_new_edges_and_weights(self):
        graph = build(self.SOURCE, variant=GraphVariant.PARAGRAPH)
        assert max(e.weight for e in graph.edges_of_type(EdgeType.CHILD)) > 1.0

    def test_same_node_count_across_variants(self):
        node_counts = {
            variant: build(self.SOURCE, variant=variant).num_nodes
            for variant in GraphVariant
        }
        assert len(set(node_counts.values())) == 1

    def test_edge_count_ordering_raw_lt_augmented_eq_paragraph(self):
        raw = build(self.SOURCE, variant=GraphVariant.RAW_AST).num_edges
        augmented = build(self.SOURCE, variant=GraphVariant.AUGMENTED_AST).num_edges
        full = build(self.SOURCE, variant=GraphVariant.PARAGRAPH).num_edges
        assert raw < augmented == full


class TestOnRealKernels:
    def test_all_registry_kernels_build_valid_graphs(self):
        from repro.kernels import all_kernels

        for kernel in all_kernels():
            ast = analyze(kernel.parse())
            graph = build_paragraph(ast, env=kernel.environment(), num_threads=8)
            graph.validate()
            assert graph.num_nodes > 10
            assert graph.edges_of_type(EdgeType.FOR_EXEC)

    @given(st.integers(2, 200), st.integers(1, 16))
    @settings(max_examples=25, deadline=None)
    def test_loop_weight_scales_with_bound_and_threads(self, bound, threads):
        source = (f"#pragma omp parallel for\n"
                  f"for (int i = 0; i < {bound}; i++) {{ x += i; }}")
        graph = build(source, num_threads=threads)
        # edges outside the loop body keep weight 1, so that is the floor
        expected = max(bound / threads, 1.0)
        assert max(e.weight for e in graph.edges_of_type(EdgeType.CHILD)) == pytest.approx(expected)
