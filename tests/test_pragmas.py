"""Tests for OpenMP pragma parsing."""

import pytest

from repro.clang.ast_nodes import (
    OMPGenericDirective,
    OMPParallelForDirective,
    OMPTargetDataDirective,
    OMPTargetEnterDataDirective,
    OMPTargetTeamsDistributeParallelForDirective,
)
from repro.clang.pragmas import (
    PragmaError,
    is_standalone,
    parse_clauses,
    parse_omp_pragma,
)


class TestDirectiveMatching:
    def test_parallel_for(self):
        cls, name, clauses = parse_omp_pragma("omp parallel for")
        assert cls is OMPParallelForDirective
        assert name == "parallel for"
        assert clauses == []

    def test_longest_match_wins(self):
        cls, name, _ = parse_omp_pragma("omp target teams distribute parallel for")
        assert cls is OMPTargetTeamsDistributeParallelForDirective
        assert name == "target teams distribute parallel for"

    def test_target_data(self):
        cls, _, _ = parse_omp_pragma("omp target data map(to: a[0:100])")
        assert cls is OMPTargetDataDirective

    def test_target_enter_data_is_standalone(self):
        cls, name, _ = parse_omp_pragma("omp target enter data map(to: a[0:10])")
        assert cls is OMPTargetEnterDataDirective
        assert is_standalone(name)

    def test_parallel_for_is_not_standalone(self):
        _, name, _ = parse_omp_pragma("omp parallel for")
        assert not is_standalone(name)

    def test_unknown_directive_falls_back_to_generic(self):
        cls, name, _ = parse_omp_pragma("omp taskloop grainsize(4)")
        assert cls is OMPGenericDirective
        assert name == "taskloop"

    def test_non_omp_pragma_raises(self):
        with pytest.raises(PragmaError):
            parse_omp_pragma("unroll 4")

    def test_empty_omp_pragma_raises(self):
        with pytest.raises(PragmaError):
            parse_omp_pragma("omp")


class TestClauses:
    def test_collapse_integer_argument(self):
        _, _, clauses = parse_omp_pragma("omp parallel for collapse(2)")
        assert clauses[0].clause_name == "collapse"
        assert clauses[0].children[0].value == 2

    def test_num_threads_clause(self):
        _, _, clauses = parse_omp_pragma("omp parallel for num_threads(8) schedule(static)")
        names = [c.clause_name for c in clauses]
        assert names == ["num_threads", "schedule"]

    def test_map_clause_text_preserved(self):
        _, _, clauses = parse_omp_pragma(
            "omp target teams distribute parallel for map(to: A[0:100], B[0:200]) map(from: C[0:100])")
        maps = [c for c in clauses if c.clause_name == "map"]
        assert len(maps) == 2
        assert "A[0:100]" in maps[0].arguments_text

    def test_clause_without_arguments(self):
        clauses = parse_clauses("nowait")
        assert clauses[0].clause_name == "nowait"
        assert clauses[0].arguments_text == ""

    def test_nested_parentheses_in_clause(self):
        clauses = parse_clauses("if(n > (m + 1))")
        assert clauses[0].arguments_text == "n > (m + 1)"

    def test_unbalanced_parentheses_raise(self):
        with pytest.raises(PragmaError):
            parse_clauses("map(to: a[0:10]")

    def test_multiple_clauses_mixed(self):
        _, _, clauses = parse_omp_pragma(
            "omp target teams distribute parallel for collapse(2) num_teams(64) thread_limit(128)")
        values = {c.clause_name: c for c in clauses}
        assert set(values) == {"collapse", "num_teams", "thread_limit"}

    def test_clause_int_helper_via_directive(self):
        from repro.clang.pragmas import build_directive
        cls, name, clauses = parse_omp_pragma("omp parallel for collapse(3) num_threads(16)")
        directive = build_directive(cls, name, clauses)
        assert directive.clause_int("collapse") == 3
        assert directive.clause_int("num_threads") == 16
        assert directive.clause_int("missing", 5) == 5
