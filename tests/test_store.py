"""Tests for ``repro.store``: artifacts, checkpointing, warm-start serving.

The acceptance property of the artifact store: a session loaded from an
artifact serves float64 (``dtype=None``) predictions **bit-identical** to
the session that wrote it — including through a multi-worker
:class:`repro.serve.Server` — with zero retraining.  Plus the layer
plumbing the store rides on (``Module`` buffers + dtype-preserving
``load_state_dict``, ``Vocabulary`` / scaler dict round trips), the
corrupt/truncated/version-mismatch error paths (every error names the
offending field), the ``ModelRegistry`` pinning semantics, and the
``python -m repro.store`` CLI.
"""

import json
import os
import shutil

import numpy as np
import pytest

from repro.api import DataConfig, ModelConfig, ReproConfig, Session, get_kernel
from repro.compoff import COMPOFFConfig, COMPOFFModel
from repro.compoff.features import NUM_FEATURES, FeatureSample
from repro.ml.scaler import (
    LogMinMaxScaler,
    MinMaxScaler,
    StandardScaler,
    scaler_from_dict,
)
from repro.ml.trainer import TrainingConfig
from repro.nn.layers import Linear
from repro.nn.module import Module, parameters_as
from repro.paragraph.vocab import Vocabulary, default_vocabulary
from repro.pipeline import SweepConfig
from repro.serve import Server, ServerConfig
from repro.store import (
    CorruptArtifactError,
    ModelRegistry,
    SCHEMA_VERSION,
    StoreError,
    VersionMismatchError,
    inspect_artifact,
    load_compoff,
    load_session,
    verify_artifact,
)
from repro.store.cli import main as cli_main

PLATFORM = "v100"

SOURCES = [
    "void kernel(int n) { for (int i = 0; i < 50; i++) { n += i; } }",
    "void other(int n) { for (int i = 0; i < 9; i++) { for (int j = 0; j < 4; j++) { n += i * j; } } }",
]


def tiny_config() -> ReproConfig:
    return ReproConfig(
        data=DataConfig(
            sweep=SweepConfig(size_scales=(1.0,), team_counts=(64,),
                              thread_counts=(8, 64),
                              kernels=[get_kernel("matmul")]),
            platforms=(PLATFORM,)),
        model=ModelConfig(hidden_dim=10),
        training=TrainingConfig(epochs=2, batch_size=16,
                                learning_rate=2e-3, seed=0),
        seed=0,
    )


@pytest.fixture(scope="module")
def trained_session():
    session = Session(tiny_config())
    session.train()
    yield session
    session.close()


@pytest.fixture(scope="module")
def artifact(trained_session, tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "artifact"
    trained_session.save(str(path), name="tiny")
    return str(path)


@pytest.fixture()
def broken_copy(artifact, tmp_path):
    """A private mutable copy of the artifact for corruption tests."""
    destination = tmp_path / "broken"
    shutil.copytree(artifact, destination)
    return str(destination)


def _manifest(path: str) -> dict:
    with open(os.path.join(path, "manifest.json"), "r", encoding="utf-8") as f:
        return json.load(f)


def _write_manifest(path: str, payload: dict) -> None:
    with open(os.path.join(path, "manifest.json"), "w", encoding="utf-8") as f:
        json.dump(payload, f)


# --------------------------------------------------------------------- #
# nn.Module: buffers + dtype-preserving load_state_dict
# --------------------------------------------------------------------- #
class TestModuleStateDict:
    def test_buffers_travel_with_state_dict(self):
        a = Linear(3, 2, rng=np.random.default_rng(0))
        a.register_buffer("steps", np.array([7], dtype=np.int64))
        state = a.state_dict()
        assert state["steps"].dtype == np.int64
        b = Linear(3, 2, rng=np.random.default_rng(1))
        b.register_buffer("steps", np.array([0], dtype=np.int64))
        b.load_state_dict(state)
        assert b.steps.tolist() == [7]
        np.testing.assert_array_equal(b.weight.data, a.weight.data)

    def test_nested_buffers_round_trip(self):
        class Wrapper(Module):
            def __init__(self, seed):
                super().__init__()
                self.inner = Linear(2, 2, rng=np.random.default_rng(seed))
                self.inner.register_buffer("scale", np.array([1.5, 2.5]))

        a, b = Wrapper(0), Wrapper(1)
        a.inner.scale = np.array([3.0, 4.0])
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(b.inner.scale, [3.0, 4.0])
        np.testing.assert_array_equal(b.inner._buffers["scale"], [3.0, 4.0])

    def test_buffer_attribute_assignment_stays_registered(self):
        layer = Linear(2, 2)
        layer.register_buffer("steps", np.array([0], dtype=np.int64))
        layer.steps = np.array([5], dtype=np.int64)
        assert layer._buffers["steps"].tolist() == [5]
        assert "steps" in dict(layer.named_buffers())

    def test_dtype_mismatch_names_entry_and_refuses(self):
        layer = Linear(3, 2)
        state = layer.state_dict()
        state["weight"] = state["weight"].astype(np.float32)
        with pytest.raises(ValueError, match="dtype mismatch for weight.*float32"):
            layer.load_state_dict(state)

    def test_explicit_cast_opt_in(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        state = layer.state_dict()
        state["weight"] = state["weight"].astype(np.float32)
        layer.load_state_dict(state, cast=True)
        assert layer.weight.data.dtype == np.float64

    def test_cast_that_overflows_to_inf_is_refused(self):
        layer = Linear(2, 2)
        layer.register_buffer("scale", np.ones(2, dtype=np.float32))
        state = layer.state_dict()
        state["scale"] = np.array([1e300, 0.0])   # finite in float64...
        with pytest.raises(ValueError, match="overflowed to non-finite"):
            layer.load_state_dict(state, cast=True)

    def test_integer_cast_that_wraps_is_refused(self):
        layer = Linear(2, 2)
        layer.register_buffer("steps", np.zeros(2, dtype=np.int8))
        state = layer.state_dict()
        state["steps"] = np.array([300, 0], dtype=np.int64)  # wraps in int8
        with pytest.raises(ValueError, match="does not round-trip"):
            layer.load_state_dict(state, cast=True)
        state["steps"] = np.array([3, 0], dtype=np.int64)    # fits exactly
        layer.load_state_dict(state, cast=True)
        assert layer.steps.tolist() == [3, 0]

    def test_cross_kind_lossy_casts_are_refused(self):
        layer = Linear(2, 2)
        layer.register_buffer("ratio", np.zeros(1, dtype=np.float64))
        state = layer.state_dict()
        # int64 value not representable in float64: would silently round
        state["ratio"] = np.array([2**53 + 1], dtype=np.int64)
        with pytest.raises(ValueError, match="does not round-trip"):
            layer.load_state_dict(state, cast=True)
        flag = Linear(2, 2)
        flag.register_buffer("flag", np.zeros(1, dtype=np.bool_))
        state = flag.state_dict()
        state["flag"] = np.array([0.7])          # 0.7 -> True is lossy
        with pytest.raises(ValueError, match="does not round-trip"):
            flag.load_state_dict(state, cast=True)

    def test_parameter_names_cannot_be_shadowed_by_plain_arrays(self):
        layer = Linear(2, 2)
        with pytest.raises(ValueError, match="cannot shadow parameter"):
            layer.weight = np.zeros((2, 2))
        layer.weight.data = np.zeros((2, 2))     # the supported spelling
        assert not layer.weight.data.any()

    def test_signed_to_unsigned_wrap_is_refused(self):
        layer = Linear(2, 2)
        layer.register_buffer("count", np.zeros(1, dtype=np.uint64))
        state = layer.state_dict()
        state["count"] = np.array([-1], dtype=np.int64)   # wraps invertibly
        with pytest.raises(ValueError, match="does not round-trip"):
            layer.load_state_dict(state, cast=True)

    def test_parameter_and_module_names_cannot_collide(self):
        from repro.nn.module import Module, Parameter

        outer = Module()
        outer.slot = Parameter(np.zeros(2))
        with pytest.raises(ValueError, match="already a parameter"):
            outer.slot = Linear(2, 2)
        other = Module()
        other.slot = Linear(2, 2)
        with pytest.raises(ValueError, match="already a child module"):
            other.slot = Parameter(np.zeros(2))
        with pytest.raises(ValueError, match="cannot shadow child module"):
            other.slot = np.zeros(2)
        with pytest.raises(ValueError, match="already a parameter"):
            outer.register_module("slot", Linear(2, 2))

    def test_non_finite_values_fail_loudly(self):
        layer = Linear(3, 2)
        state = layer.state_dict()
        state["bias"][0] = np.inf
        with pytest.raises(ValueError, match="'bias' contains non-finite"):
            layer.load_state_dict(state)

    def test_failed_load_leaves_module_untouched(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        before = layer.state_dict()
        bad = layer.state_dict()
        bad["weight"][:] = 1.0          # would change the module...
        bad["bias"][0] = np.nan         # ...but this entry is corrupt
        with pytest.raises(ValueError):
            layer.load_state_dict(bad)
        np.testing.assert_array_equal(layer.weight.data, before["weight"])

    def test_state_dict_ignores_serving_dtype_overlay(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        with parameters_as(layer, np.float32):
            state = layer.state_dict()
        assert state["weight"].dtype == np.float64

    def test_name_cannot_be_both_buffer_and_parameter(self):
        from repro.nn.module import Parameter

        layer = Linear(2, 2)
        layer.register_buffer("scale", np.ones(2))
        with pytest.raises(ValueError, match="already a buffer"):
            layer.scale = Parameter(np.zeros(2))
        with pytest.raises(ValueError, match="already a parameter"):
            layer.register_buffer("weight", np.zeros((2, 2)))

    def test_object_dtype_buffers_are_rejected(self):
        layer = Linear(2, 2)
        with pytest.raises(ValueError, match="object dtype"):
            layer.register_buffer("bad", None)
        layer.register_buffer("steps", np.array([0], dtype=np.int64))
        with pytest.raises(ValueError, match="object dtype"):
            layer.steps = None

    def test_buffer_names_cannot_shadow_module_machinery(self):
        layer = Linear(2, 2)
        for reserved in ("parameters", "training", "_buffers", "state_dict"):
            with pytest.raises(ValueError, match="already has an attribute"):
                layer.register_buffer(reserved, np.zeros(2))
        layer.register_buffer("steps", np.zeros(1, dtype=np.int64))
        layer.register_buffer("steps", np.ones(1, dtype=np.int64))  # update ok
        assert layer.steps.tolist() == [1]

    def test_dotted_buffer_names_are_rejected(self):
        # '.' delimits the module hierarchy: "child.w" as a buffer name
        # would collide with a child module's parameter key in state_dict
        layer = Linear(2, 2)
        with pytest.raises(ValueError, match="invalid buffer name"):
            layer.register_buffer("child.w", np.zeros(2))
        with pytest.raises(ValueError, match="invalid buffer name"):
            layer.register_buffer("", np.zeros(2))

    def test_name_cannot_be_both_buffer_and_module(self):
        outer = Module()
        outer.register_buffer("x", np.zeros(2))
        with pytest.raises(ValueError, match="already a buffer"):
            outer.x = Linear(2, 2)
        other = Module()
        other.child = Linear(2, 2)
        with pytest.raises(ValueError, match="already a child module"):
            other.register_buffer("child", np.zeros(2))


# --------------------------------------------------------------------- #
# Vocabulary / scaler dict round trips
# --------------------------------------------------------------------- #
class TestSerializationPlumbing:
    def test_vocabulary_round_trip_is_exact(self):
        vocabulary = default_vocabulary()
        rebuilt = Vocabulary.from_dict(
            json.loads(json.dumps(vocabulary.to_dict())))
        assert rebuilt == vocabulary
        assert rebuilt.labels() == vocabulary.labels()
        assert rebuilt.index("ForStmt") == vocabulary.index("ForStmt")

    @pytest.mark.parametrize("payload", [
        "not a dict", {}, {"labels": "ForStmt"}, {"labels": [1, 2]},
        {"labels": ["A", "A"]},
    ])
    def test_vocabulary_rejects_bad_payloads(self, payload):
        with pytest.raises(ValueError):
            Vocabulary.from_dict(payload)

    @pytest.mark.parametrize("scaler_cls", [MinMaxScaler, StandardScaler,
                                            LogMinMaxScaler])
    def test_scaler_round_trip_bit_exact_through_json(self, scaler_cls):
        rng = np.random.default_rng(3)
        data = rng.uniform(0.001, 1000.0, size=(17, 2))
        scaler = scaler_cls().fit(data)
        rebuilt = scaler_from_dict(json.loads(json.dumps(scaler.to_dict())))
        probe = rng.uniform(0.001, 1000.0, size=(5, 2))
        np.testing.assert_array_equal(rebuilt.transform(probe),
                                      scaler.transform(probe))
        np.testing.assert_array_equal(
            rebuilt.inverse_transform(scaler.transform(probe)),
            scaler.inverse_transform(scaler.transform(probe)))

    def test_scaler_from_dict_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown scaler type"):
            scaler_from_dict({"type": "zscore"})

    def test_scaler_from_dict_rejects_corrupted_state(self):
        good = MinMaxScaler().fit(np.arange(6.0).reshape(3, 2)).to_dict()
        with pytest.raises(ValueError, match="non-finite"):
            scaler_from_dict({**good, "data_min": [0.0, float("nan")]})
        with pytest.raises(ValueError, match="disagree in length"):
            scaler_from_dict({**good, "data_min": [0.0]})
        with pytest.raises(ValueError, match="not a numeric array"):
            scaler_from_dict({**good, "data_max": ["high", "low"]})
        with pytest.raises(ValueError, match="inverted"):
            scaler_from_dict({**good, "data_min": good["data_max"],
                              "data_max": good["data_min"]})
        standard = StandardScaler().fit(np.arange(6.0).reshape(3, 2)).to_dict()
        with pytest.raises(ValueError, match="strictly positive"):
            scaler_from_dict({**standard, "std": [1.0, 0.0]})

    def test_corrupt_feature_range_is_a_value_error(self):
        good = MinMaxScaler().fit(np.arange(6.0).reshape(3, 2)).to_dict()
        for bad in (None, 1.5, [0.0], ["low", "high"]):
            with pytest.raises(ValueError, match="feature_range"):
                scaler_from_dict({**good, "feature_range": bad})

    def test_vocabulary_stays_hashable(self):
        assert hash(default_vocabulary()) == hash(default_vocabulary())
        assert len({default_vocabulary(), default_vocabulary()}) == 1

    def test_unfitted_scaler_refuses_to_dict(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().to_dict()


# --------------------------------------------------------------------- #
# the acceptance property: save → load → serve, bit-identical
# --------------------------------------------------------------------- #
class TestWarmStartServing:
    def test_load_is_bit_identical_through_multiworker_server(
            self, trained_session, artifact):
        reference = trained_session.predict_batch(SOURCES, PLATFORM,
                                                  dtype=None)
        loaded = Session.load(artifact)
        try:
            assert loaded.warm_started
            # straight through the facade...
            np.testing.assert_array_equal(
                loaded.predict_batch(SOURCES, PLATFORM, dtype=None),
                reference)
            # ...and through a real multi-worker server
            with Server(loaded, ServerConfig(num_workers=2)) as server:
                np.testing.assert_array_equal(
                    server.predict_batch(SOURCES, PLATFORM, dtype=None),
                    reference)
                assert server.stats().warm_started
        finally:
            loaded.close()

    def test_float32_serving_stays_in_tolerance(self, trained_session,
                                                artifact):
        reference = trained_session.predict_batch(SOURCES, PLATFORM,
                                                  dtype=None)
        loaded = Session.load(artifact)
        try:
            served = loaded.predict_batch(SOURCES, PLATFORM)
            np.testing.assert_allclose(served, reference, rtol=1e-3)
        finally:
            loaded.close()

    def test_loaded_session_skips_training(self, artifact):
        loaded = Session.load(artifact)
        try:
            results = loaded.train()          # must be a restored no-op
            assert sorted(results) == ["NVIDIA V100"]
            assert len(results["NVIDIA V100"].dataset) == 0
            assert loaded._build is None
            with pytest.raises(RuntimeError, match="warm-started"):
                loaded.workflow()
        finally:
            loaded.close()

    def test_config_and_vocabulary_round_trip_through_store(
            self, trained_session, artifact):
        loaded = Session.load(artifact)
        try:
            assert loaded.config.to_dict() == trained_session.config.to_dict()
            assert loaded.encoder.vocabulary == \
                trained_session.encoder.vocabulary
            assert loaded.encoder.feature_dim == \
                trained_session.encoder.feature_dim
        finally:
            loaded.close()

    def test_provenance_and_stats(self, trained_session, artifact):
        loaded = Session.load(artifact)
        try:
            provenance = loaded.provenance
            assert provenance["name"] == "tiny"
            assert provenance["schema_version"] == SCHEMA_VERSION
            assert provenance["dataset_fingerprint"]
            assert not trained_session.warm_started
        finally:
            loaded.close()

    def test_resaving_a_warm_session_keeps_the_fingerprint(self, artifact,
                                                           tmp_path):
        loaded = Session.load(artifact)
        try:
            resaved = tmp_path / "resaved"
            loaded.save(str(resaved))
            assert _manifest(str(resaved))["dataset_fingerprint"] == \
                _manifest(artifact)["dataset_fingerprint"]
        finally:
            loaded.close()

    def test_session_subclasses_load_as_themselves(self, artifact):
        class TracedSession(Session):
            pass

        loaded = TracedSession.load(artifact)
        try:
            assert isinstance(loaded, TracedSession)
            assert loaded.warm_started
        finally:
            loaded.close()

    def test_server_from_artifact(self, trained_session, artifact):
        reference = trained_session.predict_batch(SOURCES, PLATFORM,
                                                  dtype=None)
        with Server.from_artifact(artifact,
                                  ServerConfig(num_workers=1)) as server:
            np.testing.assert_array_equal(
                server.predict_batch(SOURCES, PLATFORM, dtype=None),
                reference)
            assert server.stats().warm_started
            server.session.close()

    def test_save_refuses_silent_overwrite(self, trained_session, artifact):
        with pytest.raises(StoreError, match="already exists"):
            trained_session.save(artifact)

    def test_overwrite_clears_stale_payloads(self, trained_session, tmp_path):
        path = str(tmp_path / "rewritten")
        trained_session.save(path)
        stale = os.path.join(path, "weights", "ghost-platform.npz")
        with open(stale, "wb") as handle:
            handle.write(b"stale payload")
        trained_session.save(path, overwrite=True)
        assert not os.path.exists(stale)
        assert verify_artifact(path).ok

    def test_failed_save_preserves_existing_artifact(self, trained_session,
                                                     tmp_path):
        from repro.store import save_trainers

        path = str(tmp_path / "art")
        trained_session.save(path)
        before = _manifest(path)
        trainer = trained_session.train()["NVIDIA V100"].trainer
        weight = trainer.model.parameters()[0]
        original = weight.data
        weight.data = np.full_like(original, np.nan)
        try:
            with pytest.raises(StoreError, match="non-finite"):
                save_trainers(path, {"NVIDIA V100": trainer},
                              config=trained_session.config,
                              encoder=trained_session.encoder,
                              overwrite=True)
        finally:
            weight.data = original
        # the previously valid artifact survived the failed overwrite intact
        assert _manifest(path) == before
        assert verify_artifact(path).ok
        assert not any(entry.startswith("art.staging")
                       for entry in os.listdir(str(tmp_path)))

    def test_colliding_platform_slugs_get_distinct_files(self, trained_session,
                                                        tmp_path):
        from repro.store import save_trainers

        trainer = trained_session.train()["NVIDIA V100"].trainer
        path = str(tmp_path / "collisions")
        save_trainers(path, {"p": trainer, "p 2": trainer, "p.": trainer},
                      config=trained_session.config,
                      encoder=trained_session.encoder)
        manifest = _manifest(path)
        files = [entry["weights"] for entry in manifest["models"]]
        assert len(set(files)) == 3
        assert verify_artifact(path).ok


# --------------------------------------------------------------------- #
# error paths: every failure names the offending field
# --------------------------------------------------------------------- #
class TestArtifactErrorPaths:
    def test_missing_artifact_directory(self, tmp_path):
        with pytest.raises(CorruptArtifactError, match="does not exist"):
            load_session(str(tmp_path / "nope"))

    def test_truncated_manifest_is_corrupt(self, broken_copy):
        manifest_path = os.path.join(broken_copy, "manifest.json")
        with open(manifest_path, "r", encoding="utf-8") as handle:
            text = handle.read()
        with open(manifest_path, "w", encoding="utf-8") as handle:
            handle.write(text[:len(text) // 2])
        with pytest.raises(CorruptArtifactError, match="unreadable"):
            load_session(broken_copy)

    def test_schema_violation_names_the_field(self, broken_copy):
        payload = _manifest(broken_copy)
        del payload["vocabulary"]
        _write_manifest(broken_copy, payload)
        with pytest.raises(CorruptArtifactError, match="'vocabulary'"):
            load_session(broken_copy)

    def test_bad_checksum_field_names_itself(self, broken_copy):
        payload = _manifest(broken_copy)
        payload["models"][0]["sha256"] = "zz" * 32
        _write_manifest(broken_copy, payload)
        with pytest.raises(CorruptArtifactError, match=r"models\[0\].sha256"):
            load_session(broken_copy)

    def test_flipped_payload_bytes_fail_the_checksum(self, broken_copy):
        weights = os.path.join(broken_copy, "weights", "nvidia-v100.npz")
        with open(weights, "r+b") as handle:
            handle.seek(100)
            byte = handle.read(1)
            handle.seek(100)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(CorruptArtifactError, match="checksum mismatch"):
            load_session(broken_copy)
        report = verify_artifact(broken_copy)
        assert not report.ok
        assert any("checksum mismatch" in problem
                   for problem in report.problems)

    def test_missing_weights_file(self, broken_copy):
        os.remove(os.path.join(broken_copy, "weights", "nvidia-v100.npz"))
        with pytest.raises(CorruptArtifactError, match="missing from the "
                                                       "artifact"):
            load_session(broken_copy)

    def test_unreadable_weights_payload_is_reported_not_raised(
            self, broken_copy):
        weights = os.path.join(broken_copy, "weights", "nvidia-v100.npz")
        os.remove(weights)
        os.makedirs(weights)          # a directory where the file should be
        with pytest.raises(CorruptArtifactError, match="cannot read payload"):
            load_session(broken_copy)
        report = verify_artifact(broken_copy)
        assert not report.ok
        assert any("cannot read payload" in problem
                   for problem in report.problems)

    def test_schema_version_mismatch(self, broken_copy):
        payload = _manifest(broken_copy)
        payload["schema_version"] = SCHEMA_VERSION + 1
        _write_manifest(broken_copy, payload)
        with pytest.raises(VersionMismatchError, match="'schema_version'"):
            load_session(broken_copy)

    def test_repro_major_version_mismatch(self, broken_copy):
        payload = _manifest(broken_copy)
        payload["repro_version"] = "99.0.0"
        _write_manifest(broken_copy, payload)
        with pytest.raises(VersionMismatchError,
                           match="'repro_version'.*99.0.0"):
            load_session(broken_copy)

    def test_verify_collects_every_problem(self, broken_copy):
        payload = _manifest(broken_copy)
        payload["models"][0]["sha256"] = "0" * 64
        _write_manifest(broken_copy, payload)
        report = verify_artifact(broken_copy)
        assert not report.ok and report.problems
        assert "FAILED" in report.summary()

    def test_non_dict_model_entry_is_named_precisely(self, broken_copy):
        payload = _manifest(broken_copy)
        payload["models"].append("oops")
        _write_manifest(broken_copy, payload)
        with pytest.raises(CorruptArtifactError,
                           match=r"models\[1\]'. expected an object"):
            load_session(broken_copy)

    def test_aliased_platform_entries_are_rejected(self, broken_copy):
        payload = _manifest(broken_copy)
        clone = json.loads(json.dumps(payload["models"][0]))
        clone["name"] = "v100"     # distinct string, same canonical platform
        payload["models"].append(clone)
        _write_manifest(broken_copy, payload)
        with pytest.raises(CorruptArtifactError,
                           match="another model entry already claims"):
            load_session(broken_copy)

    def test_non_numeric_metrics_fail_schema_validation(self, broken_copy):
        payload = _manifest(broken_copy)
        payload["models"][0]["metrics"]["rmse"] = "bad"
        _write_manifest(broken_copy, payload)
        with pytest.raises(CorruptArtifactError, match=r"metrics\['rmse'\]"):
            load_session(broken_copy)
        assert not verify_artifact(broken_copy).ok
        assert cli_main(["inspect", broken_copy]) == 2

    def test_verify_catches_config_weight_mismatch(self, broken_copy):
        payload = _manifest(broken_copy)
        payload["config"]["model"]["hidden_dim"] += 2
        _write_manifest(broken_copy, payload)
        report = verify_artifact(broken_copy)   # checksums still pass...
        assert not report.ok                    # ...but reconstruction must too
        assert any("does not fit" in problem for problem in report.problems)
        with pytest.raises(CorruptArtifactError, match="does not fit"):
            load_session(broken_copy)

    def test_kind_mismatch_is_actionable(self, artifact):
        with pytest.raises(StoreError, match="expected a 'compoff' artifact"):
            load_compoff(artifact)

    def test_corrupt_scaler_state_is_caught_by_verify_and_load(
            self, broken_copy):
        payload = _manifest(broken_copy)
        scalers = payload["models"][0]["scalers"]
        scalers["target"]["feature_range"] = None
        scalers["aux"]["data_min"] = [0.0, float("nan")]
        _write_manifest(broken_copy, payload)
        report = verify_artifact(broken_copy)
        assert not report.ok
        assert any("feature_range" in problem for problem in report.problems)
        assert any("non-finite" in problem for problem in report.problems)
        with pytest.raises(CorruptArtifactError, match=r"scalers\.target"):
            load_session(broken_copy)


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
class TestModelRegistry:
    def test_publish_versions_and_latest_pointer(self, trained_session,
                                                 tmp_path):
        registry = ModelRegistry(str(tmp_path / "registry"))
        assert registry.publish("paragraph", trained_session) == "paragraph@v1"
        assert registry.publish("paragraph", trained_session) == "paragraph@v2"
        assert registry.versions("paragraph") == ["v1", "v2"]
        assert registry.latest("paragraph") == "v2"
        assert registry.path_for("paragraph") == \
            registry.path_for("paragraph@v2")
        assert registry.path_for("paragraph@latest") == \
            registry.path_for("paragraph@v2")
        registry.set_latest("paragraph", "v1")
        assert registry.path_for("paragraph").endswith("v1")

    def test_pinned_load_serves_bit_identically(self, trained_session,
                                                tmp_path):
        registry = ModelRegistry(str(tmp_path / "registry"))
        ref = registry.publish("paragraph", trained_session)
        reference = trained_session.predict_batch(SOURCES, PLATFORM,
                                                  dtype=None)
        loaded = registry.load(ref)
        try:
            assert loaded.warm_started
            np.testing.assert_array_equal(
                loaded.predict_batch(SOURCES, PLATFORM, dtype=None),
                reference)
        finally:
            loaded.close()

    def test_publish_existing_artifact_directory(self, artifact, tmp_path):
        registry = ModelRegistry(str(tmp_path / "registry"))
        ref = registry.publish("imported", artifact=artifact, version="v7")
        assert ref == "imported@v7"
        assert registry.latest("imported") == "v7"
        assert inspect_artifact(registry.path_for(ref))["name"] == "tiny"
        # republish over the live version: swap, no destroy-then-copy
        registry.publish("imported", artifact=artifact, version="v7",
                         overwrite=True)
        assert verify_artifact(registry.path_for("imported@v7")).ok
        assert registry.versions("imported") == ["v7"]

    def test_evaluation_pinned_session_helper(self, trained_session,
                                              tmp_path):
        from repro.evaluation import pinned_session

        registry = ModelRegistry(str(tmp_path / "registry"))
        ref = registry.publish("paragraph", trained_session)
        loaded = pinned_session(ref, registry_root=str(tmp_path / "registry"))
        try:
            assert loaded.warm_started
        finally:
            loaded.close()

    def test_publish_rejects_corrupt_artifacts(self, broken_copy, tmp_path):
        weights = os.path.join(broken_copy, "weights", "nvidia-v100.npz")
        with open(weights, "ab") as handle:
            handle.write(b"trailing garbage")
        registry = ModelRegistry(str(tmp_path / "registry"))
        with pytest.raises(StoreError, match="refusing to publish"):
            registry.publish("broken", artifact=broken_copy)
        assert registry.names() == []

    def test_publish_rejects_artifacts_load_cannot_serve(self, tmp_path):
        rng = np.random.default_rng(0)
        samples = [FeatureSample(features=rng.uniform(0, 1, NUM_FEATURES),
                                 runtime_us=50.0, metadata={})
                   for _ in range(8)]
        model = COMPOFFModel(COMPOFFConfig(epochs=1))
        model.fit(samples)
        compoff_path = str(tmp_path / "compoff")
        model.save(compoff_path)
        registry = ModelRegistry(str(tmp_path / "registry"))
        with pytest.raises(StoreError, match="cannot publish 'compoff'"):
            registry.publish("baseline", artifact=compoff_path)

    def test_unpublished_refs_and_bad_names_raise(self, tmp_path):
        registry = ModelRegistry(str(tmp_path / "registry"))
        with pytest.raises(StoreError, match="nothing published"):
            registry.path_for("ghost")
        with pytest.raises(StoreError, match="invalid model name"):
            registry.path_for("../escape@v1")
        with pytest.raises(StoreError, match="exactly one source"):
            registry.publish("paragraph")

    def test_corrupt_latest_pointer_never_resolves(self, trained_session,
                                                   tmp_path):
        root = str(tmp_path / "registry")
        registry = ModelRegistry(root)
        registry.publish("m", trained_session)
        with open(os.path.join(root, "m", "LATEST"), "w") as handle:
            handle.write("../escape/v3\n")
        with pytest.raises(StoreError, match="corrupt LATEST pointer"):
            registry.path_for("m")

    def test_reserved_version_names_are_rejected(self, trained_session,
                                                 tmp_path):
        registry = ModelRegistry(str(tmp_path / "registry"))
        with pytest.raises(StoreError, match="reserved for the latest"):
            registry.publish("m", trained_session, version="LATEST")
        with pytest.raises(StoreError, match="reserved for the latest"):
            registry.publish("m", trained_session, version="latest")
        with pytest.raises(StoreError, match="reserved for in-flight"):
            registry.publish("m", trained_session, version="v1.staging.7")
        ref = registry.publish("m", trained_session)
        # staging leftovers and the pointer file never list as versions
        os.makedirs(os.path.join(str(tmp_path / "registry"), "m",
                                 "v9.staging.123"))
        assert registry.versions("m") == ["v1"]
        with pytest.raises(StoreError, match="reserved"):
            registry.path_for("m@v9.staging.123")
        assert registry.path_for(ref).endswith("v1")


class TestRegistryFallback:
    """Corrupt-artifact degradation: ``load`` quarantines the bad version
    and falls back to the previous good one instead of failing the serving
    deployment (STORE.md "Corrupt artifacts")."""

    @staticmethod
    def _corrupt_weights(registry, name, version):
        weights = os.path.join(registry.root, name, version, "weights",
                               "nvidia-v100.npz")
        with open(weights, "ab") as handle:
            handle.write(b"trailing garbage")

    @pytest.fixture()
    def two_versions(self, trained_session, tmp_path):
        registry = ModelRegistry(str(tmp_path / "registry"))
        registry.publish("paragraph", trained_session)    # v1 (good)
        registry.publish("paragraph", trained_session)    # v2 (latest)
        reference = trained_session.predict_batch(SOURCES, PLATFORM,
                                                  dtype=None)
        return registry, reference

    def test_latest_falls_back_to_previous_good_version(self, two_versions):
        registry, reference = two_versions
        self._corrupt_weights(registry, "paragraph", "v2")
        with pytest.warns(UserWarning, match="fell back to paragraph@v1"):
            loaded = registry.load("paragraph")
        try:
            np.testing.assert_array_equal(
                loaded.predict_batch(SOURCES, PLATFORM, dtype=None),
                reference)
        finally:
            loaded.close()
        # the bad version is out of the way, not deleted
        assert registry.versions("paragraph") == ["v1"]
        quarantined = registry.quarantined("paragraph")
        assert len(quarantined) == 1
        assert quarantined[0].startswith("v2.quarantine.")
        # LATEST no longer points at the quarantined version
        assert registry.latest("paragraph") == "v1"
        assert registry.path_for("paragraph").endswith("v1")

    def test_pinned_load_falls_back_too(self, two_versions):
        registry, reference = two_versions
        self._corrupt_weights(registry, "paragraph", "v2")
        with pytest.warns(UserWarning, match="quarantined"):
            loaded = registry.load("paragraph@v2")
        try:
            np.testing.assert_array_equal(
                loaded.predict_batch(SOURCES, PLATFORM, dtype=None),
                reference)
        finally:
            loaded.close()

    def test_fallback_false_fails_fast(self, two_versions):
        registry, _ = two_versions
        self._corrupt_weights(registry, "paragraph", "v2")
        with pytest.raises(CorruptArtifactError, match="checksum"):
            registry.load("paragraph", fallback=False)
        # strict mode quarantines nothing
        assert registry.versions("paragraph") == ["v1", "v2"]
        assert registry.quarantined("paragraph") == []

    def test_no_good_version_left_raises(self, two_versions):
        registry, _ = two_versions
        self._corrupt_weights(registry, "paragraph", "v1")
        self._corrupt_weights(registry, "paragraph", "v2")
        with pytest.raises(StoreError, match="no remaining version"):
            registry.load("paragraph")

    def test_quarantine_names_are_reserved(self, trained_session, tmp_path):
        registry = ModelRegistry(str(tmp_path / "registry"))
        with pytest.raises(StoreError, match="quarantine"):
            registry.publish("m", trained_session,
                             version="v1.quarantine.bad")
        registry.publish("m", trained_session)
        with pytest.raises(StoreError, match="reserved"):
            registry.path_for("m@v1.quarantine.x")

    def test_resolution_errors_do_not_trigger_fallback(self, tmp_path):
        registry = ModelRegistry(str(tmp_path / "registry"))
        with pytest.raises(StoreError, match="nothing published"):
            registry.load("ghost")


# --------------------------------------------------------------------- #
# COMPOFF coefficients as artifacts
# --------------------------------------------------------------------- #
class TestCompoffArtifacts:
    def test_round_trip_is_bit_identical(self, tmp_path):
        rng = np.random.default_rng(0)
        samples = [FeatureSample(features=rng.uniform(0, 1, NUM_FEATURES),
                                 runtime_us=float(rng.uniform(10, 1000)),
                                 metadata={})
                   for _ in range(16)]
        model = COMPOFFModel(COMPOFFConfig(epochs=2))
        model.fit(samples)
        path = str(tmp_path / "compoff")
        model.save(path)
        assert _manifest(path)["kind"] == "compoff"
        assert verify_artifact(path).ok
        restored = COMPOFFModel.load(path)
        np.testing.assert_array_equal(restored.predict(samples),
                                      model.predict(samples))

    def test_unfitted_model_refuses_to_save(self, tmp_path):
        with pytest.raises(StoreError, match="not fitted"):
            COMPOFFModel().save(str(tmp_path / "compoff"))

    def test_compoff_subclasses_load_as_themselves(self, tmp_path):
        class TracedCompoff(COMPOFFModel):
            pass

        rng = np.random.default_rng(0)
        samples = [FeatureSample(features=rng.uniform(0, 1, NUM_FEATURES),
                                 runtime_us=50.0, metadata={})
                   for _ in range(8)]
        model = TracedCompoff(COMPOFFConfig(epochs=1))
        model.fit(samples)
        path = str(tmp_path / "compoff")
        model.save(path)
        assert isinstance(TracedCompoff.load(path), TracedCompoff)

    def test_verify_reports_unreconstructable_config_without_crashing(
            self, tmp_path):
        rng = np.random.default_rng(0)
        samples = [FeatureSample(features=rng.uniform(0, 1, NUM_FEATURES),
                                 runtime_us=50.0, metadata={})
                   for _ in range(8)]
        model = COMPOFFModel(COMPOFFConfig(epochs=1))
        model.fit(samples)
        path = str(tmp_path / "compoff")
        model.save(path)
        payload = _manifest(path)
        payload["config"]["hidden_dims"] = "abc"   # schema-valid, nonsense
        _write_manifest(path, payload)
        report = verify_artifact(path)             # must report, not raise
        assert not report.ok and report.problems
        with pytest.raises(CorruptArtifactError):
            load_compoff(path)

    def test_session_loader_rejects_compoff_artifacts(self, tmp_path):
        rng = np.random.default_rng(0)
        samples = [FeatureSample(features=rng.uniform(0, 1, NUM_FEATURES),
                                 runtime_us=50.0, metadata={})
                   for _ in range(8)]
        model = COMPOFFModel(COMPOFFConfig(epochs=1))
        model.fit(samples)
        path = str(tmp_path / "compoff")
        model.save(path)
        with pytest.raises(StoreError, match="expected a 'session' artifact"):
            load_session(path)


# --------------------------------------------------------------------- #
# the seeded differential sweep (replay: python -m repro.synth store-roundtrip <seed>)
# --------------------------------------------------------------------- #
class TestStoreRoundtripScenario:
    def test_synth_store_roundtrip_sweep(self):
        from repro.synth import run_cases

        report = run_cases("store-roundtrip")
        assert report.ok
        assert report.cases >= 2


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
class TestStoreCLI:
    def test_save_verify_inspect_load_round_trip(self, tmp_path, capsys):
        config_path = tmp_path / "config.json"
        config_path.write_text(json.dumps(tiny_config().to_dict()))
        artifact = str(tmp_path / "cli-artifact")
        assert cli_main(["save", artifact, "--config",
                         str(config_path)]) == 0
        assert cli_main(["verify", artifact]) == 0
        assert cli_main(["inspect", artifact, "--json"]) == 0
        captured = capsys.readouterr().out
        summary = json.loads(captured[captured.rindex("\n{"):])
        assert summary["kind"] == "session"
        source_path = tmp_path / "kernel.c"
        source_path.write_text(SOURCES[0])
        assert cli_main(["load", artifact, "--source", str(source_path),
                         "--platform", PLATFORM]) == 0
        assert "warm-started" in capsys.readouterr().out

    def test_verify_exits_nonzero_on_corruption(self, broken_copy, capsys):
        payload = _manifest(broken_copy)
        payload["models"][0]["sha256"] = "0" * 64
        _write_manifest(broken_copy, payload)
        assert cli_main(["verify", broken_copy]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_missing_artifact_is_a_clean_error(self, tmp_path, capsys):
        assert cli_main(["inspect", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_config_json_is_a_clean_error(self, tmp_path, capsys):
        config_path = tmp_path / "broken.json"
        config_path.write_text("{not json")
        assert cli_main(["save", str(tmp_path / "out"), "--config",
                         str(config_path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_config_keys_fail_fast(self, tmp_path, capsys):
        config_path = tmp_path / "typo.json"
        config_path.write_text(json.dumps({"trainig": {"epochs": 2}}))
        assert cli_main(["save", str(tmp_path / "out"), "--config",
                         str(config_path)]) == 2
        assert "unknown keys" in capsys.readouterr().err

    def test_unknown_platform_is_a_clean_error(self, artifact, tmp_path,
                                               capsys):
        source_path = tmp_path / "kernel.c"
        source_path.write_text(SOURCES[0])
        assert cli_main(["load", artifact, "--source", str(source_path),
                         "--platform", "no-such-gpu"]) == 2
        assert "error:" in capsys.readouterr().err
