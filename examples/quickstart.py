#!/usr/bin/env python3
"""Quickstart: the full ParaGraph pipeline through the ``repro.api`` session.

Builds a :class:`~repro.api.Session` from per-stage configs (sweep, graph,
model, training), runs the Fig.-3 workflow end to end on two simulated
accelerators (NVIDIA V100 and IBM POWER9), prints the per-platform RMSE /
normalized RMSE (the Table III shape), and finishes with the serving hot
path: predicting the runtime of a freshly generated OpenMP variant with
``session.predict``.

Run with:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.advisor import VariantKind, generate_variant
from repro.api import DataConfig, ModelConfig, ReproConfig, Session, get_kernel
from repro.evaluation import format_table
from repro.ml.trainer import TrainingConfig
from repro.pipeline import SweepConfig


def main() -> None:
    config = ReproConfig(
        data=DataConfig(
            sweep=SweepConfig(
                size_scales=(0.5, 1.0),
                team_counts=(64,),
                thread_counts=(8, 64),
                kernels=[get_kernel("matmul"), get_kernel("matvec"),
                         get_kernel("laplace_sweep"), get_kernel("correlation"),
                         get_kernel("pf_normalize")],
            ),
            platforms=("v100", "power9"),      # registry aliases work too
        ),
        model=ModelConfig(hidden_dim=24),
        training=TrainingConfig(epochs=20, batch_size=16, learning_rate=2e-3, seed=0),
        seed=0,
    )
    session = Session(config)

    print("Running the ParaGraph workflow (variants -> graphs -> runtimes -> GNN)...")
    result = session.workflow()

    print("\nDataset sizes per platform:")
    for name, dataset in result.build.datasets.items():
        print(f"  {name:15s} {len(dataset):4d} data points")

    rows = [{"platform": name,
             "rmse_ms": metrics["rmse"] / 1000.0,
             "normalized_rmse": metrics["normalized_rmse"]}
            for name, metrics in result.metrics_table().items()]
    print("\nValidation results (Table III shape):")
    print(format_table(rows, ("platform", "rmse_ms", "normalized_rmse")))

    for name, platform_result in result.platforms.items():
        curve = platform_result.history.val_normalized_rmses
        print(f"\n{name}: normalized RMSE per epoch "
              f"(first -> last): {curve[0]:.3f} -> {curve[-1]:.3f}")

    # the serving hot path: predict an unseen variant's runtime
    sizes = {"N": 96, "M": 96, "K": 96}
    variant = generate_variant(get_kernel("matmul"), VariantKind.GPU_COLLAPSE, sizes)
    runtime_us = session.predict(variant, "v100", sizes=sizes,
                                 num_teams=64, num_threads=64)
    print(f"\nPredicted runtime of {variant.name} on the V100: "
          f"{runtime_us / 1000.0:.3f} ms")


if __name__ == "__main__":
    main()
