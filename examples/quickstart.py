#!/usr/bin/env python3
"""Quickstart: the full ParaGraph pipeline on a compact dataset.

Runs the Fig.-3 workflow end to end on two simulated accelerators (NVIDIA
V100 and IBM POWER9): generate kernel variants, build weighted ParaGraphs,
collect simulated runtimes, train the RGAT model with a 9:1 split, and print
the per-platform RMSE / normalized RMSE (the Table III shape).

Run with:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.evaluation import format_table
from repro.hardware import POWER9, V100
from repro.kernels import get_kernel
from repro.ml.trainer import TrainingConfig
from repro.pipeline import SweepConfig, WorkflowConfig, run_workflow


def main() -> None:
    config = WorkflowConfig(
        sweep=SweepConfig(
            size_scales=(0.5, 1.0),
            team_counts=(64,),
            thread_counts=(8, 64),
            kernels=[get_kernel("matmul"), get_kernel("matvec"),
                     get_kernel("laplace_sweep"), get_kernel("correlation"),
                     get_kernel("pf_normalize")],
        ),
        training=TrainingConfig(epochs=20, batch_size=16, learning_rate=2e-3, seed=0),
        hidden_dim=24,
        seed=0,
    )
    print("Running the ParaGraph workflow (variants -> graphs -> runtimes -> GNN)...")
    result = run_workflow(config, platforms=(V100, POWER9))

    print("\nDataset sizes per platform:")
    for name, dataset in result.build.datasets.items():
        print(f"  {name:15s} {len(dataset):4d} data points")

    rows = [{"platform": name,
             "rmse_ms": metrics["rmse"] / 1000.0,
             "normalized_rmse": metrics["normalized_rmse"]}
            for name, metrics in result.metrics_table().items()]
    print("\nValidation results (Table III shape):")
    print(format_table(rows, ("platform", "rmse_ms", "normalized_rmse")))

    for name, platform_result in result.platforms.items():
        curve = platform_result.history.val_normalized_rmses
        print(f"\n{name}: normalized RMSE per epoch "
              f"(first -> last): {curve[0]:.3f} -> {curve[-1]:.3f}")


if __name__ == "__main__":
    main()
