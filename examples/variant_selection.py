#!/usr/bin/env python3
"""OpenMP variant selection — the use case the paper motivates.

For a few benchmark kernels, generate the six code-variant transformations
(cpu, cpu_collapse, gpu, gpu_collapse, gpu_mem, gpu_collapse_mem), predict
the runtime of each with a cost model, and report which transformation the
Advisor recommends for the NVIDIA V100 and for the IBM POWER9 host.

Run with:  python examples/variant_selection.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.advisor import ALL_VARIANTS, OpenMPAdvisor
from repro.api import get_kernel, get_platform
from repro.evaluation import format_table
from repro.hardware import analytical_cost_model

# platforms resolved through the repro.api registry (aliases work)
V100 = get_platform("v100")
POWER9 = get_platform("power9")

KERNELS = [
    ("matmul", {"N": 512, "M": 512, "K": 512}),
    ("matmul", {"N": 32, "M": 32, "K": 32}),
    ("transpose", {"N": 2048, "M": 2048}),
    ("pf_weight_update", {"NP": 262144}),
]


def main() -> None:
    gpu_advisor = OpenMPAdvisor(analytical_cost_model(V100))
    cpu_advisor = OpenMPAdvisor(analytical_cost_model(POWER9))

    for kernel_name, sizes in KERNELS:
        kernel = get_kernel(kernel_name)
        print("=" * 72)
        print(f"Kernel {kernel.full_name} with sizes {sizes}")

        gpu_rec = gpu_advisor.recommend(kernel, sizes, num_teams=256, num_threads=128,
                                        kinds=[k for k in ALL_VARIANTS if k.is_gpu])
        cpu_rec = cpu_advisor.recommend(kernel, sizes, num_threads=22,
                                        kinds=[k for k in ALL_VARIANTS if not k.is_gpu])

        rows = []
        for variant, runtime in sorted({**gpu_rec.predicted_runtimes,
                                        **cpu_rec.predicted_runtimes}.items(),
                                       key=lambda kv: kv[1]):
            device = "NVIDIA V100" if variant.startswith("gpu") else "IBM POWER9"
            rows.append({"variant": variant, "device": device,
                         "predicted_runtime_ms": runtime / 1000.0})
        print(format_table(rows, ("variant", "device", "predicted_runtime_ms")))

        overall_best = min({**gpu_rec.predicted_runtimes, **cpu_rec.predicted_runtimes}.items(),
                           key=lambda kv: kv[1])
        print(f"Best GPU transformation : {gpu_rec.best_kind.value}")
        print(f"Best CPU transformation : {cpu_rec.best_kind.value}")
        print(f"Overall recommendation  : {overall_best[0]} "
              f"({overall_best[1] / 1000.0:.3f} ms predicted)\n")

        print("Generated pragma for the best GPU variant:")
        print(f"  {gpu_rec.best_variant.pragma}\n")


if __name__ == "__main__":
    main()
