#!/usr/bin/env python3
"""Serving-style batched prediction: the ``Session.predict_batch`` hot path.

A serving tier keeps one trained :class:`~repro.api.Session` alive and calls
``predict_batch`` per request batch.  This demo trains a compact model for
the NVIDIA V100, then serves three "request waves" over the six OpenMP
variants of matmul:

1. a cold wave (every graph parsed, built and encoded from scratch),
2. a warm wave of the same sources (pure LRU cache hits + one batched GNN
   forward pass),
3. a mixed wave (half cached, half new problem sizes).

It prints the predicted runtimes, the cache statistics and the cold/warm
speedup.

Run with:  python examples/serving_batch_predict.py
"""

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.advisor import ALL_VARIANTS, generate_variant
from repro.api import (DataConfig, ModelConfig, ReproConfig, Session, SourceSpec,
                       get_kernel)
from repro.evaluation import format_table
from repro.ml.trainer import TrainingConfig
from repro.pipeline import SweepConfig


def make_session() -> Session:
    config = ReproConfig(
        data=DataConfig(
            sweep=SweepConfig(size_scales=(0.5, 1.0), team_counts=(64,),
                              thread_counts=(8, 64),
                              kernels=[get_kernel("matmul"), get_kernel("matvec"),
                                       get_kernel("transpose")]),
            platforms=("v100",),
        ),
        model=ModelConfig(hidden_dim=16),
        training=TrainingConfig(epochs=10, batch_size=16, learning_rate=2e-3, seed=0),
        seed=0,
    )
    return Session(config)


def main() -> None:
    session = make_session()
    print("Training the V100 model once (the serving tier does this at startup)...")
    session.train()

    kernel = get_kernel("matmul")
    sizes = {"N": 96, "M": 96, "K": 96}
    variants = [generate_variant(kernel, kind, sizes)
                for kind in ALL_VARIANTS
                if not kind.uses_collapse or kernel.collapsible_loops >= 2]

    # wave 1: cold — every graph constructed from scratch
    start = time.perf_counter()
    cold = session.predict_batch(variants, "v100", sizes=sizes,
                                 num_teams=128, num_threads=64)
    cold_s = time.perf_counter() - start

    # wave 2: warm — identical sources, pure cache hits
    start = time.perf_counter()
    warm = session.predict_batch(variants, "v100", sizes=sizes,
                                 num_teams=128, num_threads=64)
    warm_s = time.perf_counter() - start

    rows = [{"variant": variant.kind.value,
             "cold_ms": runtime / 1000.0,
             "warm_ms": warm_runtime / 1000.0}
            for variant, runtime, warm_runtime in zip(variants, cold, warm)]
    print("\nPredicted matmul runtimes on the NVIDIA V100 (identical by design):")
    print(format_table(rows, ("variant", "cold_ms", "warm_ms")))

    info = session.cache_info()
    print(f"\nGraph cache: {info.hits} hits, {info.misses} misses, "
          f"{info.size}/{info.capacity} entries")
    print(f"Cold wave: {cold_s * 1000:.1f} ms   warm wave: {warm_s * 1000:.1f} ms   "
          f"speedup: {cold_s / max(warm_s, 1e-9):.1f}x")

    # wave 3: mixed — new problem sizes miss, old ones still hit
    bigger = {"N": 192, "M": 192, "K": 192}
    mixed_sources = variants[:3] + [
        SourceSpec.of(generate_variant(kernel, v.kind, bigger), sizes=bigger,
                      num_teams=128, num_threads=64)
        for v in variants[:3]]
    session.predict_batch(mixed_sources, "v100", sizes=sizes,
                          num_teams=128, num_threads=64)
    info = session.cache_info()
    print(f"After a mixed wave: {info.hits} hits, {info.misses} misses "
          f"({info.size} cached graphs)")


if __name__ == "__main__":
    main()
