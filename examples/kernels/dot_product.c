/* Reduction done right: the accumulator is named in a reduction clause,
 * so the race checker must not fire. */
void dot_product(int n, double *x, double *y, double *result) {
  double acc = 0.0;
  #pragma omp parallel for reduction(+:acc)
  for (int i = 0; i < n; i++) {
    acc += x[i] * y[i];
  }
  result[0] = acc;
}
