/* Three-point stencil into a separate output array: independent
 * iterations, so parallelizing the outer loop is legal and the analyzer
 * must stay silent. */
void stencil3(int n, double *out, double *in) {
  #pragma omp parallel for
  for (int i = 1; i < n - 1; i++) {
    out[i] = 0.25 * in[i - 1] + 0.5 * in[i] + 0.25 * in[i + 1];
  }
}
