/* Clean SAXPY kernel: the analysis CLI must report zero issues here. */
void saxpy(int n, double a, double *x, double *y) {
  #pragma omp parallel for
  for (int i = 0; i < n; i++) {
    y[i] = a * x[i] + y[i];
  }
}
