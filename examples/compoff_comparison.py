#!/usr/bin/env python3
"""ParaGraph vs the COMPOFF baseline on the NVIDIA V100 (Figs. 8-9).

Trains both cost models on the same simulated V100 measurements — ParaGraph
on the weighted program graphs, COMPOFF on hand-engineered operation-count
features — and prints their error and correlation side by side.

Run with:  python examples/compoff_comparison.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import get_kernel, get_platform
from repro.compoff import COMPOFFConfig
from repro.evaluation import format_table, run_comparison
from repro.ml.trainer import TrainingConfig
from repro.pipeline import SweepConfig

# resolved through the repro.api platform registry; the comparison driver
# itself builds its ParaGraph model through repro.api.ModelConfig
V100 = get_platform("v100")


def main() -> None:
    sweep = SweepConfig(
        size_scales=(0.5, 1.0, 2.0),
        team_counts=(64,),
        thread_counts=(8, 64),
        kernels=[get_kernel("matmul"), get_kernel("matvec"), get_kernel("transpose"),
                 get_kernel("covariance_matrix"), get_kernel("knn_distance"),
                 get_kernel("pf_likelihood")],
    )
    print("Training ParaGraph (RGAT on graphs) and COMPOFF (MLP on features)...")
    comparison = run_comparison(
        platform=V100,
        sweep=sweep,
        training=TrainingConfig(epochs=25, batch_size=16, learning_rate=2e-3, seed=0),
        compoff_config=COMPOFFConfig(epochs=150, seed=0),
        hidden_dim=24,
        seed=0,
    )

    summary = comparison.summary()
    rows = [{"model": name,
             "rmse_ms": metrics["rmse"] / 1000.0,
             "mean_relative_error": metrics["mean_relative_error"],
             "pearson": metrics["pearson"]}
            for name, metrics in summary.items()]
    print("\nValidation comparison on the NVIDIA V100:")
    print(format_table(rows, ("model", "rmse_ms", "mean_relative_error", "pearson")))

    print("\nPredicted vs actual (first 10 validation points, ms):")
    scatter = comparison.figure9_points()
    sample_rows = []
    for (actual, para), (_, compoff) in list(zip(scatter["ParaGraph"], scatter["COMPOFF"]))[:10]:
        sample_rows.append({"actual_ms": actual / 1000.0,
                            "paragraph_ms": para / 1000.0,
                            "compoff_ms": compoff / 1000.0})
    print(format_table(sample_rows, ("actual_ms", "paragraph_ms", "compoff_ms")))


if __name__ == "__main__":
    main()
