#!/usr/bin/env python3
"""ParaGraph construction walk-through (the paper's Fig. 2 examples).

Feeds the three toy snippets from Fig. 2 — a declaration + assignment, an
``if``/``else`` and a ``for`` loop — through the ``repro.api`` stage
pipeline (``ParseStage -> GraphStage``), dumps the Clang-style ASTs, and
prints the edges and weights ParaGraph adds on top (NextToken, NextSib, Ref,
ForExec, ForNext, ConTrue, ConFalse, and the loop/branch Child-edge
weights).  The same pipeline re-runs with the Raw-AST and Augmented-AST
``GraphConfig`` variants to show the ablation sizes.

Run with:  python examples/paragraph_construction.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import GraphConfig, GraphStage, ParseStage, Pipeline, SourceSpec
from repro.clang import dump
from repro.paragraph import EdgeType

SNIPPETS = {
    "declaration and assignment": "int x;\nx = 50;",
    "if / else": "if (x > 50) { a = 1; } else { a = 2; }",
    "for loop": "for (int i = 0; i < 50; i++) { x += i; }",
}


def build(source: str, variant: str = "paragraph"):
    """One stage-pipeline run returning (analyzed AST, program graph)."""
    pipeline = Pipeline([ParseStage(snippet=True),
                         GraphStage(GraphConfig(variant=variant))])
    context = pipeline.run(specs=[SourceSpec(source=source)])
    return context["asts"][0], context["graphs"][0]


def describe(name: str, source: str) -> None:
    print("=" * 72)
    print(f"Snippet: {name}\n{source}\n")
    ast, graph = build(source)
    print("Clang-style AST:")
    print(dump(ast))

    print(f"\n{graph.summary()}")
    print("\nAugmentation edges:")
    for edge_type in EdgeType:
        if edge_type is EdgeType.CHILD:
            continue
        for edge in graph.edges_of_type(edge_type):
            src, dst = graph.nodes[edge.src], graph.nodes[edge.dst]
            print(f"  {edge_type.display_name:10s} "
                  f"{src.label}({src.spelling or '-'}) -> {dst.label}({dst.spelling or '-'})")
    print("\nWeighted Child edges (weight > 1):")
    for edge in graph.edges_of_type(EdgeType.CHILD):
        if edge.weight != 1.0:
            src, dst = graph.nodes[edge.src], graph.nodes[edge.dst]
            print(f"  {src.label} -> {dst.label}: weight={edge.weight:g}")

    _, raw = build(source, variant="raw_ast")
    _, augmented = build(source, variant="augmented_ast")
    print(f"\nAblation sizes: Raw AST {raw.num_edges} edges, "
          f"Augmented AST {augmented.num_edges} edges, ParaGraph {graph.num_edges} edges\n")


def main() -> None:
    for name, source in SNIPPETS.items():
        describe(name, source)


if __name__ == "__main__":
    main()
