#!/usr/bin/env python3
"""Ablation study: Raw AST vs Augmented AST vs ParaGraph (Table IV / Fig. 7).

Runs one :class:`~repro.api.Session` per graph-representation level — the
only config difference between them is ``GraphConfig(variant=...)`` — on a
compact simulated dataset for the AMD MI50, reproducing the shape of the
paper's ablation: new edges help, edge weights help more.

Run with:  python examples/ablation_study.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import (DataConfig, GraphConfig, ModelConfig, ReproConfig, Session,
                       get_kernel)
from repro.evaluation import format_curves, format_table
from repro.ml.trainer import TrainingConfig
from repro.pipeline import SweepConfig

PLATFORM = "AMD MI50"
VARIANTS = ("raw_ast", "augmented_ast", "paragraph")


def main() -> None:
    sweep = SweepConfig(
        size_scales=(0.5, 1.0),
        team_counts=(64,),
        thread_counts=(8, 64),
        kernels=[get_kernel("matmul"), get_kernel("matvec"), get_kernel("transpose"),
                 get_kernel("laplace_sweep"), get_kernel("correlation"),
                 get_kernel("pf_normalize")],
    )
    training = TrainingConfig(epochs=25, batch_size=16, learning_rate=2e-3, seed=0)

    print("Training the model on Raw AST, Augmented AST and ParaGraph (AMD MI50)...")
    row = {"platform": PLATFORM}
    curves = {}
    for variant in VARIANTS:
        session = Session(ReproConfig(
            data=DataConfig(sweep=sweep, platforms=("mi50",)),
            graph=GraphConfig(variant=variant),
            model=ModelConfig(hidden_dim=24),
            training=training,
            seed=0,
        ))
        platform_result = session.train()[PLATFORM]
        row[variant] = platform_result.metrics["rmse"] / 1000.0
        curves[variant] = platform_result.history.val_rmses

    print("\nTable IV shape — RMSE (ms) per representation:")
    print(format_table([row], ("platform",) + VARIANTS))

    print("\nFig. 7 shape — validation RMSE (us) per epoch:")
    print(format_curves(curves, every=5, value_format="{:.0f}"))


if __name__ == "__main__":
    main()
