#!/usr/bin/env python3
"""Ablation study: Raw AST vs Augmented AST vs ParaGraph (Table IV / Fig. 7).

Trains the same RGAT model on the three levels of the representation using a
compact simulated dataset for the AMD MI50 and prints the resulting RMSE per
level plus the per-epoch curves, reproducing the shape of the paper's
ablation: new edges help, edge weights help more.

Run with:  python examples/ablation_study.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.evaluation import format_curves, format_table, run_ablation
from repro.hardware import MI50
from repro.kernels import get_kernel
from repro.ml.trainer import TrainingConfig
from repro.pipeline import SweepConfig


def main() -> None:
    sweep = SweepConfig(
        size_scales=(0.5, 1.0),
        team_counts=(64,),
        thread_counts=(8, 64),
        kernels=[get_kernel("matmul"), get_kernel("matvec"), get_kernel("transpose"),
                 get_kernel("laplace_sweep"), get_kernel("correlation"),
                 get_kernel("pf_normalize")],
    )
    training = TrainingConfig(epochs=25, batch_size=16, learning_rate=2e-3, seed=0)

    print("Training the model on Raw AST, Augmented AST and ParaGraph (AMD MI50)...")
    ablation = run_ablation(sweep=sweep, training=training, platforms=(MI50,),
                            hidden_dim=24, seed=0)

    rows = ablation.rmse_table()
    print("\nTable IV shape — RMSE (ms) per representation:")
    print(format_table(rows, ("platform", "raw_ast", "augmented_ast", "paragraph")))

    print("\nFig. 7 shape — validation RMSE (us) per epoch:")
    curves = {variant: history.val_rmses
              for variant, history in ablation.histories_for(MI50.name).items()}
    print(format_curves(curves, every=5, value_format="{:.0f}"))


if __name__ == "__main__":
    main()
