"""Make the in-tree sources importable for pytest without installation.

The offline environment has no `wheel` package, so `pip install -e .` cannot
build a PEP-660 editable wheel; `python setup.py develop` works, but this
fallback keeps `pytest` functional from a clean checkout either way.

Also registers the ``slow`` marker: tests/benchmarks marked
``@pytest.mark.slow`` (e.g. paper-scale benchmark variants) are skipped
unless ``--runslow`` is passed, so the tier-1 ``pytest -x -q`` run stays
fast.
"""
import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_addoption(parser):
    parser.addoption("--runslow", action="store_true", default=False,
                     help="also run tests marked @pytest.mark.slow")


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: expensive test, skipped unless --runslow is given")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow to run it")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
