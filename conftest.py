"""Make the in-tree sources importable for pytest without installation.

The offline environment has no `wheel` package, so `pip install -e .` cannot
build a PEP-660 editable wheel; `python setup.py develop` works, but this
fallback keeps `pytest` functional from a clean checkout either way.
"""
import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
