"""Setuptools shim so `pip install -e .` works without the `wheel` package.

The package version has a single source of truth — ``__version__`` in
``src/repro/__init__.py`` (also recorded in every ``repro.store`` artifact
manifest) — read here textually so installing never imports the package.
"""
import os
import re

from setuptools import find_packages, setup


def _read_version() -> str:
    init_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "src", "repro", "__init__.py")
    with open(init_path, "r", encoding="utf-8") as handle:
        match = re.search(r'^__version__ = "([^"]+)"', handle.read(), re.M)
    if match is None:
        raise RuntimeError(f"__version__ not found in {init_path}")
    return match.group(1)


setup(
    name="repro",
    version=_read_version(),
    package_dir={"": "src"},
    packages=find_packages("src"),
)
